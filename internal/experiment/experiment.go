// Package experiment regenerates every table and figure of the paper's
// evaluation. Each experiment maps to one function returning rendered
// text (the same rows/series the paper reports); a memoizing Runner
// shares simulation outcomes between experiments so regenerating the
// whole evaluation costs one run per (workload, system) pair.
//
// The paper's published values are embedded (paper.go) so every
// experiment can print a paper-vs-measured comparison; EXPERIMENTS.md
// is generated from exactly this output.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Scale is the number of generated scheduling rounds per workload
	// (0 = workload default). Larger is slower and smoother.
	Scale int
	// Seed drives all generation deterministically.
	Seed int64
	// Parallel runs independent simulations on multiple goroutines.
	Parallel bool
}

// DefaultConfig returns the configuration used for the published
// EXPERIMENTS.md numbers.
func DefaultConfig() Config { return Config{Scale: 0, Seed: 1, Parallel: true} }

// TestConfig returns the reduced, fully deterministic configuration the
// test suite standardizes on: a small fixed scale so the whole
// evaluation grid runs in seconds, a pinned seed, and serial execution
// so runs are reproducible independent of scheduling. The golden files
// under testdata/golden were rendered with exactly this configuration.
func TestConfig() Config { return Config{Scale: 5, Seed: 1, Parallel: false} }

// runKey identifies a memoized outcome.
type runKey struct {
	w        workload.Name
	sys      core.System
	deferred bool
	pureUpd  bool
	machine  string // geometry signature, "" = default machine
}

// Runner memoizes simulation outcomes across experiments.
type Runner struct {
	cfg Config

	mu    sync.Mutex
	cache map[runKey]*core.Outcome
}

// NewRunner returns a Runner for the given config.
func NewRunner(cfg Config) *Runner {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Runner{cfg: cfg, cache: make(map[runKey]*core.Outcome)}
}

// Outcome returns the (cached) outcome of a workload under a system on
// the default machine.
func (r *Runner) Outcome(w workload.Name, sys core.System) (*core.Outcome, error) {
	return r.outcome(runKey{w: w, sys: sys}, nil)
}

// OutcomeDeferred returns the outcome with deferred copying enabled.
func (r *Runner) OutcomeDeferred(w workload.Name, sys core.System) (*core.Outcome, error) {
	return r.outcome(runKey{w: w, sys: sys, deferred: true}, nil)
}

// OutcomePureUpdate returns the outcome under a machine-wide update
// protocol.
func (r *Runner) OutcomePureUpdate(w workload.Name, sys core.System) (*core.Outcome, error) {
	return r.outcome(runKey{w: w, sys: sys, pureUpd: true}, nil)
}

// OutcomeOn returns the outcome on a custom machine geometry.
func (r *Runner) OutcomeOn(w workload.Name, sys core.System, p sim.Params) (*core.Outcome, error) {
	// The signature must cover every field a study may sweep.
	sig := fmt.Sprintf("l1d=%d/%d/%d l1i=%d/%d l2=%d/%d/%d wb=%d/%d lat=%d/%d/%d dma=%d/%d/%d mshr=%d",
		p.L1D.Size, p.L1D.LineSize, p.L1D.Assoc,
		p.L1I.Size, p.L1I.LineSize,
		p.L2.Size, p.L2.LineSize, p.L2.Assoc,
		p.L1WriteBufDepth, p.L2WriteBufDepth,
		p.L1HitCycles, p.L2HitCycles, p.MemCycles,
		p.DMASetupCycles, p.DMACyclesPer8B, p.DMASnoopPenalty,
		p.MSHREntries)
	return r.outcome(runKey{w: w, sys: sys, machine: sig}, &p)
}

func (r *Runner) outcome(k runKey, machine *sim.Params, mods ...func(*core.RunConfig)) (*core.Outcome, error) {
	r.mu.Lock()
	if o, ok := r.cache[k]; ok {
		r.mu.Unlock()
		return o, nil
	}
	r.mu.Unlock()
	cfg := core.RunConfig{
		Workload:     k.w,
		System:       k.sys,
		Scale:        r.cfg.Scale,
		Seed:         r.cfg.Seed,
		Machine:      machine,
		DeferredCopy: k.deferred,
		PureUpdate:   k.pureUpd,
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	o, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[k] = o
	r.mu.Unlock()
	return o, nil
}

// Pair names one (workload, system) simulation.
type Pair struct {
	Workload workload.Name
	System   core.System
}

// WarmUp runs the given pairs concurrently (when the config allows) so
// later experiment renders hit the cache. The first error, if any, is
// returned.
func (r *Runner) WarmUp(pairs []Pair) error {
	if !r.cfg.Parallel {
		for _, pr := range pairs {
			if _, err := r.Outcome(pr.Workload, pr.System); err != nil {
				return err
			}
		}
		return nil
	}
	// Bound the in-flight simulations: each holds a full trace in
	// memory, so unbounded fan-out trades CPU time for page faults.
	sem := make(chan struct{}, max(1, min(4, runtime.NumCPU())))
	var wg sync.WaitGroup
	errs := make(chan error, len(pairs))
	for _, pr := range pairs {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := r.Outcome(pr.Workload, pr.System); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// AllPairs returns every (workload, system) combination — the full
// evaluation grid.
func AllPairs() []Pair {
	var pairs []Pair
	for _, w := range workload.Names() {
		for _, sys := range core.Systems() {
			pairs = append(pairs, Pair{w, sys})
		}
	}
	return pairs
}

// Experiment names one regenerable table or figure.
type Experiment struct {
	// ID is the short name ("table1", "figure3", "update-traffic").
	ID string
	// Title matches the paper's caption.
	Title string
	// Render runs the experiment and returns its text.
	Render func(*Runner) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: Characteristics of the workloads studied", Table1},
		{"table2", "Table 2: Breakdown of operating system data misses", Table2},
		{"table3", "Table 3: Characteristics of the block operations", Table3},
		{"table4", "Table 4: Characteristics of copies of blocks smaller than a page", Table4},
		{"table5", "Table 5: Breakdown of coherence misses in the operating system", Table5},
		{"figure1", "Figure 1: Components of the overhead of block operations", Figure1},
		{"figure2", "Figure 2: Normalized OS read misses under block-operation support", Figure2},
		{"figure3", "Figure 3: Normalized OS execution time under different levels of support", Figure3},
		{"figure4", "Figure 4: Normalized OS read misses under coherence optimizations", Figure4},
		{"figure5", "Figure 5: Normalized OS read misses with hot-spot prefetching", Figure5},
		{"figure6", "Figure 6: Normalized OS execution time vs primary cache size", Figure6},
		{"figure7", "Figure 7: Normalized OS execution time vs primary cache line size", Figure7},
		{"update-traffic", "Section 5.2: bus traffic of selective update vs invalidate and pure update", UpdateTraffic},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
