// Package experiment regenerates every table and figure of the paper's
// evaluation. Each experiment maps to one function returning rendered
// text (the same rows/series the paper reports); a memoizing Runner
// shares simulation outcomes between experiments so regenerating the
// whole evaluation costs one run per (workload, system) pair.
//
// The paper's published values are embedded (paper.go) so every
// experiment can print a paper-vs-measured comparison; EXPERIMENTS.md
// is generated from exactly this output.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// Scale is the number of generated scheduling rounds per workload
	// (0 = workload default). Larger is slower and smoother.
	Scale int
	// Seed drives all generation deterministically.
	Seed int64
	// Parallel runs independent simulations on multiple goroutines
	// via the work-stealing scheduler (parallel.go). Outcomes are
	// byte-identical to a serial run; only wall-clock changes.
	Parallel bool
	// Workers is the scheduler width when Parallel is set; 0 means
	// GOMAXPROCS.
	Workers int
	// Stream generates each workload concurrently with its simulation
	// in bounded chunks (core.RunConfig.Stream) instead of
	// materializing it first. Results are byte-identical either way —
	// pinned by the streaming determinism tier — so this only trades
	// peak memory and wall clock.
	Stream bool
	// IntraWorkers runs each single simulation on this many worker
	// goroutines (core.RunConfig.IntraWorkers): processors advance
	// concurrently through provably conflict-free time windows, byte-
	// identical to the serial engine. 0 or 1 means serial. Orthogonal
	// to Parallel/Workers, which fan out across simulations.
	IntraWorkers int
	// Compute, when non-nil, replaces core.Run as the execution of a
	// cache miss. It runs beneath the memo and singleflight layers, so
	// a caller (the ossimd cluster mode) can extend the dedup chain —
	// memory, then disk store, then a peer node, then a local
	// simulation — without touching the fan-out or caching logic.
	// Configurations carrying a Monitor still bypass it: an attached
	// observer must see a real local run.
	Compute func(ctx context.Context, cfg core.RunConfig) (*core.Outcome, error)
}

// DefaultConfig returns the configuration used for the published
// EXPERIMENTS.md numbers.
func DefaultConfig() Config { return Config{Scale: 0, Seed: 1, Parallel: true} }

// TestConfig returns the reduced, fully deterministic configuration the
// test suite standardizes on: a small fixed scale so the whole
// evaluation grid runs in seconds, a pinned seed, and serial execution
// so runs are reproducible independent of scheduling. The golden files
// under testdata/golden were rendered with exactly this configuration.
func TestConfig() Config { return Config{Scale: 5, Seed: 1, Parallel: false} }

// Runner memoizes simulation outcomes across experiments. The cache is
// content-addressed — keyed by core.RunConfig.CanonicalKey, the same
// hash the ossimd result cache uses — and deduplicates concurrent
// identical requests with singleflight semantics: when N callers ask
// for the same key at once, one runs the simulation and the rest wait
// for its result, so duplicate work is never done regardless of the
// caller mix (CLI warm-up goroutines, daemon workers).
type Runner struct {
	cfg Config
	ctx context.Context

	mu        sync.Mutex
	done      map[string]*core.Outcome
	inflight  map[string]*flight
	stats     CacheStats
	lastSched []WorkerStats
}

// flight is one in-progress simulation; joiners wait on done.
type flight struct {
	done chan struct{}
	o    *core.Outcome
	err  error
}

// CacheStats counts the Runner's cache traffic.
type CacheStats struct {
	// Hits is the number of requests served from a completed outcome.
	Hits uint64
	// Joins is the number of requests that attached to an identical
	// simulation already in flight (deduplicated work).
	Joins uint64
	// Executions is the number of simulations actually run.
	Executions uint64
}

// HitRatio returns the fraction of requests that did not execute a
// simulation (hits and joins over all requests); 0 when idle.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Joins + s.Executions
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Joins) / float64(total)
}

// NewRunner returns a Runner for the given config.
func NewRunner(cfg Config) *Runner {
	return NewRunnerContext(context.Background(), cfg)
}

// NewRunnerContext returns a Runner whose simulations abort when ctx is
// canceled — the hook that makes Ctrl-C interrupt a sweep or ablation
// mid-simulation instead of running it to completion.
func NewRunnerContext(ctx context.Context, cfg Config) *Runner {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Runner{
		cfg:      cfg,
		ctx:      ctx,
		done:     make(map[string]*core.Outcome),
		inflight: make(map[string]*flight),
	}
}

// Stats returns a snapshot of the cache counters.
func (r *Runner) Stats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// SetCompute installs (or clears) the compute hook of Config.Compute
// after construction. Call it before the Runner sees traffic: the hook
// applies to future cache misses only.
func (r *Runner) SetCompute(fn func(ctx context.Context, cfg core.RunConfig) (*core.Outcome, error)) {
	r.mu.Lock()
	r.cfg.Compute = fn
	r.mu.Unlock()
}

// compute resolves the execution function for one cache miss.
func (r *Runner) compute() func(ctx context.Context, cfg core.RunConfig) (*core.Outcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Compute != nil {
		return r.cfg.Compute
	}
	return core.Run
}

// configFor is the base configuration of one (workload, system) run
// under the Runner's scale and seed.
func (r *Runner) configFor(w workload.Name, sys core.System) core.RunConfig {
	return core.RunConfig{
		Workload: w, System: sys,
		Scale: r.cfg.Scale, Seed: r.cfg.Seed,
		Stream: r.cfg.Stream, IntraWorkers: r.cfg.IntraWorkers,
	}
}

// Outcome returns the (cached) outcome of a workload under a system on
// the default machine.
func (r *Runner) Outcome(w workload.Name, sys core.System) (*core.Outcome, error) {
	return r.OutcomeConfig(r.ctx, r.configFor(w, sys))
}

// OutcomeDeferred returns the outcome with deferred copying enabled.
func (r *Runner) OutcomeDeferred(w workload.Name, sys core.System) (*core.Outcome, error) {
	cfg := r.configFor(w, sys)
	cfg.DeferredCopy = true
	return r.OutcomeConfig(r.ctx, cfg)
}

// OutcomePureUpdate returns the outcome under a machine-wide update
// protocol.
func (r *Runner) OutcomePureUpdate(w workload.Name, sys core.System) (*core.Outcome, error) {
	cfg := r.configFor(w, sys)
	cfg.PureUpdate = true
	return r.OutcomeConfig(r.ctx, cfg)
}

// OutcomeOn returns the outcome on a custom machine geometry.
func (r *Runner) OutcomeOn(w workload.Name, sys core.System, p sim.Params) (*core.Outcome, error) {
	cfg := r.configFor(w, sys)
	cfg.Machine = &p
	return r.OutcomeConfig(r.ctx, cfg)
}

// OutcomeConfig returns the (cached) outcome of an arbitrary
// configuration. Concurrent calls with equal canonical keys share one
// simulation. ctx bounds this caller's wait and the simulation itself
// when this caller starts it; the Runner's own context, if canceled,
// stops everything.
//
// Configurations carrying a Monitor bypass the cache: an attached
// observer must see a real run.
func (r *Runner) OutcomeConfig(ctx context.Context, cfg core.RunConfig) (*core.Outcome, error) {
	if cfg.Monitor != nil {
		return core.Run(ctx, cfg)
	}
	key := cfg.CanonicalKey()
	r.mu.Lock()
	if o, ok := r.done[key]; ok {
		r.stats.Hits++
		r.mu.Unlock()
		return o, nil
	}
	if f, ok := r.inflight[key]; ok {
		r.stats.Joins++
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.o, f.err
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[key] = f
	r.stats.Executions++
	r.mu.Unlock()

	f.o, f.err = r.compute()(ctx, cfg)
	r.mu.Lock()
	delete(r.inflight, key)
	if f.err == nil {
		r.done[key] = f.o
	}
	r.mu.Unlock()
	close(f.done)
	return f.o, f.err
}

// Pair names one (workload, system) simulation.
type Pair struct {
	Workload workload.Name
	System   core.System
}

// WarmUp runs the given pairs through the work-stealing scheduler
// (serially when the config says so) so later experiment renders hit
// the cache. The first error, if any, is returned.
func (r *Runner) WarmUp(pairs []Pair) error {
	cfgs := make([]core.RunConfig, len(pairs))
	for i, pr := range pairs {
		cfgs[i] = r.configFor(pr.Workload, pr.System)
	}
	_, err := r.RunConfigs(r.ctx, cfgs, nil)
	return err
}

// AllPairs returns every (workload, system) combination — the full
// evaluation grid.
func AllPairs() []Pair {
	var pairs []Pair
	for _, w := range workload.Names() {
		for _, sys := range core.Systems() {
			pairs = append(pairs, Pair{w, sys})
		}
	}
	return pairs
}

// Experiment names one regenerable table or figure.
type Experiment struct {
	// ID is the short name ("table1", "figure3", "update-traffic").
	ID string
	// Title matches the paper's caption.
	Title string
	// Render runs the experiment and returns its text.
	Render func(*Runner) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: Characteristics of the workloads studied", Table1},
		{"table2", "Table 2: Breakdown of operating system data misses", Table2},
		{"table3", "Table 3: Characteristics of the block operations", Table3},
		{"table4", "Table 4: Characteristics of copies of blocks smaller than a page", Table4},
		{"table5", "Table 5: Breakdown of coherence misses in the operating system", Table5},
		{"figure1", "Figure 1: Components of the overhead of block operations", Figure1},
		{"figure2", "Figure 2: Normalized OS read misses under block-operation support", Figure2},
		{"figure3", "Figure 3: Normalized OS execution time under different levels of support", Figure3},
		{"figure4", "Figure 4: Normalized OS read misses under coherence optimizations", Figure4},
		{"figure5", "Figure 5: Normalized OS read misses with hot-spot prefetching", Figure5},
		{"figure6", "Figure 6: Normalized OS execution time vs primary cache size", Figure6},
		{"figure7", "Figure 7: Normalized OS execution time vs primary cache line size", Figure7},
		{"update-traffic", "Section 5.2: bus traffic of selective update vs invalidate and pure update", UpdateTraffic},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
