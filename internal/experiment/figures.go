package experiment

import (
	"fmt"
	"strings"

	"oscachesim/internal/bus"
	"oscachesim/internal/core"
	"oscachesim/internal/report"
	"oscachesim/internal/sim"
	"oscachesim/internal/stats"
	"oscachesim/internal/trace"
	"oscachesim/internal/workload"
)

// Figure1 regenerates the block-operation overhead decomposition: the
// relative weight of read stall, write stall, displacement stall and
// instruction execution (the paper reports roughly 30/30/10/30).
func Figure1(r *Runner) (string, error) {
	outs, err := baseOutcomes(r)
	if err != nil {
		return "", err
	}
	t := stats.Table{
		Title:   "Figure 1: Components of block-operation overhead (%) — measured (paper ~30/30/10/30)",
		Columns: workloadColumns("Component"),
	}
	labels := []struct {
		name string
		get  func(stats.BlockOverhead) uint64
		idx  int
	}{
		{"Read Stall", func(b stats.BlockOverhead) uint64 { return b.ReadStall }, 0},
		{"Write Stall", func(b stats.BlockOverhead) uint64 { return b.WriteStall }, 1},
		{"Displ. Stall", func(b stats.BlockOverhead) uint64 { return b.DisplStall }, 2},
		{"Instr. Exec.", func(b stats.BlockOverhead) uint64 { return b.InstrExec }, 3},
	}
	for _, l := range labels {
		cells := []string{l.name}
		for _, o := range outs {
			ov := o.Counters.BlockOverhead
			cells = append(cells, cell(pct(l.get(ov), ov.Total()), PaperFigure1[l.idx]))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

// missFigure renders one normalized-OS-miss figure over a system list
// as stacked bars, split the way the paper's figure splits them.
func missFigure(r *Runner, title string, systems []core.System, split func(*core.Outcome) (uint64, string), paper map[string][4]float64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for wi, w := range workload.Names() {
		base, err := r.Outcome(w, core.Base)
		if err != nil {
			return "", err
		}
		bm := float64(base.Counters.OSDReadMisses())
		chart := &report.Chart{Title: fmt.Sprintf("  %s:", w), Width: 44}
		for _, sys := range systems {
			o, err := r.Outcome(w, sys)
			if err != nil {
				return "", err
			}
			splitVal, name := split(o)
			total := float64(o.Counters.OSDReadMisses()) / bm
			part := float64(splitVal) / bm
			ann := fmt.Sprintf("total=%.2f %s=%.2f", total, name, part)
			if p, ok := paper[sys.String()]; ok {
				ann += fmt.Sprintf("  paper=%.2f", p[wi])
			}
			chart.Add(report.Bar{
				Name: sys.String(),
				Segments: []report.Segment{
					{Label: name, Value: part},
					{Label: "rest", Value: total - part},
				},
				Annotation: ann,
			})
		}
		b.WriteString(chart.String())
	}
	return b.String(), nil
}

// Figure2 regenerates the block-operation miss comparison: normalized
// OS read misses in the primary caches under Base, Blk_Pref,
// Blk_Bypass, Blk_ByPref and Blk_Dma, split into block misses and the
// rest.
func Figure2(r *Runner) (string, error) {
	return missFigure(r,
		"Figure 2: Normalized OS read misses under block-operation support — measured vs paper",
		[]core.System{core.Base, core.BlkPref, core.BlkBypass, core.BlkByPref, core.BlkDma},
		func(o *core.Outcome) (uint64, string) {
			return o.Counters.OSMissBy[stats.MissBlock], "block"
		},
		PaperFigure2)
}

// Figure4 regenerates the coherence-optimization miss comparison:
// Base, Blk_Dma, BCoh_Reloc and BCoh_RelUp, split into coherence
// misses and the rest.
func Figure4(r *Runner) (string, error) {
	return missFigure(r,
		"Figure 4: Normalized OS read misses under coherence optimizations — measured vs paper",
		[]core.System{core.Base, core.BlkDma, core.BCohReloc, core.BCohRelUp},
		func(o *core.Outcome) (uint64, string) {
			return o.Counters.OSMissBy[stats.MissCoherence], "coh"
		},
		PaperFigure4)
}

// Figure5 regenerates the hot-spot prefetching miss comparison: Base,
// Blk_Dma, BCoh_RelUp and BCPref, split into hot-spot misses and the
// rest.
func Figure5(r *Runner) (string, error) {
	return missFigure(r,
		"Figure 5: Normalized OS read misses with hot-spot prefetching — measured vs paper",
		[]core.System{core.Base, core.BlkDma, core.BCohRelUp, core.BCPref},
		func(o *core.Outcome) (uint64, string) {
			return o.Counters.OSHotSpotMisses, "hotspot"
		},
		PaperFigure5)
}

// Figure3 regenerates the OS execution-time comparison across all
// eight systems, with the paper's stacked-bar components. Lock-spin
// and barrier-wait time executes spin instructions on the real
// machine, so it reports under Exec, as the paper's accounting does.
func Figure3(r *Runner) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 3: Normalized OS execution time — measured vs paper\n")
	for wi, w := range workload.Names() {
		base, err := r.Outcome(w, core.Base)
		if err != nil {
			return "", err
		}
		bt := float64(base.OSTime())
		chart := &report.Chart{Title: fmt.Sprintf("  %s:", w), Width: 44}
		for _, sys := range core.Systems() {
			o, err := r.Outcome(w, sys)
			if err != nil {
				return "", err
			}
			ti := o.Counters.Time[trace.KindOS]
			ann := fmt.Sprintf("total=%.2f", float64(o.OSTime())/bt)
			if p, ok := PaperFigure3[sys.String()]; ok {
				ann += fmt.Sprintf("  paper=%.2f", p[wi])
			}
			chart.Add(report.Bar{
				Name: sys.String(),
				Segments: []report.Segment{
					// Spin-wait executes instructions, so Sync reports
					// under Exec, as in the paper's accounting.
					{Label: "exec", Value: float64(ti.Exec+ti.Sync) / bt},
					{Label: "imiss", Value: float64(ti.IMiss) / bt},
					{Label: "dwrite", Value: float64(ti.DWrite) / bt},
					{Label: "dread", Value: float64(ti.DRead) / bt},
					{Label: "pref", Value: float64(ti.Pref) / bt},
				},
				Annotation: ann,
			})
		}
		b.WriteString(chart.String())
	}
	// The paper's headline aggregates.
	var remain, speed float64
	for _, w := range workload.Names() {
		base, err := r.Outcome(w, core.Base)
		if err != nil {
			return "", err
		}
		full, err := r.Outcome(w, core.BCPref)
		if err != nil {
			return "", err
		}
		remain += 100 * stats.Ratio(full.Counters.OSDReadMisses(), base.Counters.OSDReadMisses())
		speed += 100 * (1 - float64(full.OSTime())/float64(base.OSTime()))
	}
	n := float64(len(workload.Names()))
	fmt.Fprintf(&b, "  Aggregate: BCPref eliminates or hides %.0f%% of OS data misses (paper: %.0f%%) and speeds the OS up by %.0f%% (paper: %.0f%%)\n",
		100-remain/n, PaperMissesEliminated, speed/n, PaperOSSpeedup)
	return b.String(), nil
}

// sweepFigure renders an execution-time sweep over machine geometries.
func sweepFigure(r *Runner, title, axis string, machines []sim.Params, labels []string) (string, error) {
	systems := []core.System{core.Base, core.BlkDma, core.BCPref}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, w := range workload.Names() {
		fmt.Fprintf(&b, "  %s: (normalized to Base at each %s)\n", w, axis)
		for si, sys := range systems {
			fmt.Fprintf(&b, "    %-8s", sys)
			for mi, m := range machines {
				base, err := r.OutcomeOn(w, core.Base, m)
				if err != nil {
					return "", err
				}
				o := base
				if si != 0 {
					o, err = r.OutcomeOn(w, sys, m)
					if err != nil {
						return "", err
					}
				}
				fmt.Fprintf(&b, "  %s=%5.2f", labels[mi], float64(o.OSTime())/float64(base.OSTime()))
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("  (Paper: Blk_Dma always outperforms Base and BCPref always outperforms Blk_Dma at every point.)\n")
	return b.String(), nil
}

// Figure6 regenerates the primary-cache-size sweep (16/32/64 KB, line
// size fixed at 16 bytes; 256-KB L2 with 32-byte lines).
func Figure6(r *Runner) (string, error) {
	var machines []sim.Params
	var labels []string
	for _, kb := range []uint64{16, 32, 64} {
		p := sim.DefaultParams()
		p.L1D.Size = kb * 1024
		machines = append(machines, p)
		labels = append(labels, fmt.Sprintf("%dKB", kb))
	}
	return sweepFigure(r, "Figure 6: Normalized OS execution time vs primary data cache size", "size", machines, labels)
}

// Figure7 regenerates the line-size sweep (16/32/64-byte L1D lines,
// 32-KB cache; the paper pairs it with a 64-byte-line secondary cache).
func Figure7(r *Runner) (string, error) {
	var machines []sim.Params
	var labels []string
	for _, ls := range []uint64{16, 32, 64} {
		p := sim.DefaultParams()
		p.L1D.LineSize = ls
		p.L1I.LineSize = ls
		p.L2.LineSize = 64
		machines = append(machines, p)
		labels = append(labels, fmt.Sprintf("%dB", ls))
	}
	return sweepFigure(r, "Figure 7: Normalized OS execution time vs primary data cache line size", "line size", machines, labels)
}

// UpdateTraffic regenerates the Section 5.2 traffic study: the bus
// traffic of selective update (BCoh_RelUp) relative to the pure
// invalidate protocol (BCoh_Reloc), and the update traffic it saves
// relative to a machine-wide update protocol.
func UpdateTraffic(r *Runner) (string, error) {
	var b strings.Builder
	b.WriteString("Section 5.2: selective-update traffic — measured vs paper\n")
	for _, w := range workload.Names() {
		inval, err := r.Outcome(w, core.BCohReloc)
		if err != nil {
			return "", err
		}
		sel, err := r.Outcome(w, core.BCohRelUp)
		if err != nil {
			return "", err
		}
		pure, err := r.OutcomePureUpdate(w, core.BCohReloc)
		if err != nil {
			return "", err
		}
		trafficDelta := 100 * (float64(sel.Counters.Bus.TotalBytes())/float64(inval.Counters.Bus.TotalBytes()) - 1)
		selUpd := float64(sel.Counters.Bus.Bytes[bus.KindUpdate])
		pureUpd := float64(pure.Counters.Bus.Bytes[bus.KindUpdate])
		saved := 0.0
		if pureUpd > 0 {
			saved = 100 * (1 - selUpd/pureUpd)
		}
		missDelta := 100 * (float64(sel.Counters.OSDReadMisses())/float64(pure.Counters.OSDReadMisses()) - 1)
		fmt.Fprintf(&b, "  %-11s traffic vs invalidate: %+5.1f%% (paper: +3..+6%%)   update traffic saved vs pure update: %5.1f%% (paper: 31..52%%)   misses vs pure update: %+5.1f%% (paper: +1..+3%%)\n",
			w, trafficDelta, saved, missDelta)
	}
	return b.String(), nil
}
