package experiment

import (
	"fmt"
	"strings"

	"oscachesim/internal/core"
	"oscachesim/internal/stats"
	"oscachesim/internal/trace"
	"oscachesim/internal/workload"
)

// cell formats "measured (paper)" for one workload column.
func cell(measured, paper float64) string {
	return fmt.Sprintf("%5.1f (%.1f)", measured, paper)
}

// pct is a shorthand percentage.
func pct(num, den uint64) float64 { return 100 * stats.Ratio(num, den) }

// baseOutcomes fetches the Base outcome of every workload.
func baseOutcomes(r *Runner) ([]*core.Outcome, error) {
	var outs []*core.Outcome
	for _, w := range workload.Names() {
		o, err := r.Outcome(w, core.Base)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// workloadColumns returns the table header cells.
func workloadColumns(first string) []string {
	cols := []string{first}
	for _, w := range workload.Names() {
		cols = append(cols, string(w))
	}
	return cols
}

// Table1 regenerates the workload-characteristics table.
func Table1(r *Runner) (string, error) {
	outs, err := baseOutcomes(r)
	if err != nil {
		return "", err
	}
	t := stats.Table{
		Title:   "Table 1: Characteristics of the workloads studied — measured (paper)",
		Columns: workloadColumns("Characteristic"),
	}
	row := func(label, key string, get func(*core.Outcome) float64) {
		cells := []string{label}
		for i, o := range outs {
			cells = append(cells, cell(get(o), PaperTable1[key][i]))
		}
		t.AddRow(cells...)
	}
	row("User Time (%)", "user", func(o *core.Outcome) float64 {
		return pct(o.Counters.Time[trace.KindUser].Total(), o.Counters.TotalTime())
	})
	row("Idle Time (%)", "idle", func(o *core.Outcome) float64 {
		return pct(o.Counters.Time[trace.KindIdle].Total(), o.Counters.TotalTime())
	})
	row("OS Time (%)", "os", func(o *core.Outcome) float64 {
		return pct(o.Counters.OSTime(), o.Counters.TotalTime())
	})
	row("Stall Due to OS D-Accesses (% of Total)", "stall", func(o *core.Outcome) float64 {
		osT := o.Counters.Time[trace.KindOS]
		return pct(osT.DRead+osT.Pref+osT.DWrite, o.Counters.TotalTime())
	})
	row("D-Miss Rate in Primary Cache (%)", "missrate", func(o *core.Outcome) float64 {
		return 100 * o.Counters.D1MissRate()
	})
	row("OS D-Reads / Total D-Reads (%)", "osdreads", func(o *core.Outcome) float64 {
		return pct(o.Counters.DReads[trace.KindOS], o.Counters.TotalDReads())
	})
	row("OS D-Misses / Total D-Misses (%)", "osdmisses", func(o *core.Outcome) float64 {
		return pct(o.Counters.OSDReadMisses(), o.Counters.TotalDReadMisses())
	})
	return t.String(), nil
}

// Table2 regenerates the OS data-miss breakdown.
func Table2(r *Runner) (string, error) {
	outs, err := baseOutcomes(r)
	if err != nil {
		return "", err
	}
	t := stats.Table{
		Title:   "Table 2: Breakdown of operating system data misses (read misses only) — measured (paper)",
		Columns: workloadColumns("Source of OS Data Misses"),
	}
	labels := []struct {
		name string
		cls  stats.MissClass
		key  string
	}{
		{"Block Op. (%)", stats.MissBlock, "block"},
		{"Coherence (%)", stats.MissCoherence, "coherence"},
		{"Other (%)", stats.MissOther, "other"},
	}
	for _, l := range labels {
		cells := []string{l.name}
		for i, o := range outs {
			total := o.Counters.OSMissBy[0] + o.Counters.OSMissBy[1] + o.Counters.OSMissBy[2]
			cells = append(cells, cell(pct(o.Counters.OSMissBy[l.cls], total), PaperTable2[l.key][i]))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

// Table3 regenerates the block-operation characteristics. Rows 1-8 are
// measured on the Base system; the reuse rows (9-10) require the
// cache-bypassing probe run, exactly as in the paper.
func Table3(r *Runner) (string, error) {
	outs, err := baseOutcomes(r)
	if err != nil {
		return "", err
	}
	var bypass []*core.Outcome
	for _, w := range workload.Names() {
		o, err := r.Outcome(w, core.BlkBypass)
		if err != nil {
			return "", err
		}
		bypass = append(bypass, o)
	}
	t := stats.Table{
		Title:   "Table 3: Characteristics of the block operations — measured (paper)",
		Columns: workloadColumns("Characteristic"),
	}
	row := func(label, key string, get func(*core.Outcome) float64, src []*core.Outcome) {
		cells := []string{label}
		for i, o := range src {
			cells = append(cells, cell(get(o), PaperTable3[key][i]))
		}
		t.AddRow(cells...)
	}
	row("Src lines already cached (%)", "srccached", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.SrcLinesCached, o.Counters.Block.SrcLinesTotal)
	}, outs)
	row("Dst lines in L2 Dirty or Excl. (%)", "dstowned", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.DstLinesL2Owned, o.Counters.Block.DstLinesTotal)
	}, outs)
	row("Dst lines in L2 Shared (%)", "dstshared", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.DstLinesL2Shared, o.Counters.Block.DstLinesTotal)
	}, outs)
	row("Blocks of size = 4 KB (%)", "sizepage", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.SizePage, o.Counters.Block.Ops)
	}, outs)
	row("Blocks 1 KB <= size < 4 KB (%)", "sizemid", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.SizeMid, o.Counters.Block.Ops)
	}, outs)
	row("Blocks of size < 1 KB (%)", "sizesmall", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.SizeSmall, o.Counters.Block.Ops)
	}, outs)
	row("Inside displ. misses / total misses (%)", "indispl", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.InsideDispl, o.Counters.TotalDReadMisses())
	}, outs)
	row("Outside displ. misses / total misses (%)", "outdispl", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.OutsideDispl, o.Counters.TotalDReadMisses())
	}, outs)
	row("Inside reuses / total misses (%)", "inreuse", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.InsideReuse, o.Counters.TotalDReadMisses())
	}, bypass)
	row("Outside reuses / total misses (%)", "outreuse", func(o *core.Outcome) float64 {
		return pct(o.Counters.Block.OutsideReuse, o.Counters.TotalDReadMisses())
	}, bypass)
	return t.String(), nil
}

// Table4 regenerates the deferred-copy study: the share and nature of
// sub-page copies (from the Base kernel) and the misses eliminated by
// deferring them (Base vs deferred-copy run).
func Table4(r *Runner) (string, error) {
	t := stats.Table{
		Title:   "Table 4: Characteristics of copies of blocks smaller than a page — measured (paper)",
		Columns: workloadColumns("Metric"),
	}
	small := []string{"Small Block Copies / Block Copies (%)"}
	ro := []string{"Read-Only Small Copies / Small Copies (%)"}
	elim := []string{"Misses Eliminated by Deferred Copy (%)"}
	for i, w := range workload.Names() {
		base, err := r.Outcome(w, core.Base)
		if err != nil {
			return "", err
		}
		dc, err := r.OutcomeDeferred(w, core.Base)
		if err != nil {
			return "", err
		}
		d := base.Deferred
		small = append(small, cell(pct(d.SmallCopies, d.BlockCopies), PaperTable4["smallcopies"][i]))
		ro = append(ro, cell(pct(d.ReadOnlySmallCopies, d.SmallCopies), PaperTable4["readonly"][i]))
		baseM := base.Counters.TotalDReadMisses()
		dcM := dc.Counters.TotalDReadMisses()
		var elimPct float64
		if baseM > dcM {
			elimPct = 100 * float64(baseM-dcM) / float64(baseM)
		}
		elim = append(elim, cell(elimPct, PaperTable4["eliminated"][i]))
	}
	t.AddRow(small...)
	t.AddRow(ro...)
	t.AddRow(elim...)
	return t.String(), nil
}

// Table5 regenerates the coherence-miss breakdown.
func Table5(r *Runner) (string, error) {
	outs, err := baseOutcomes(r)
	if err != nil {
		return "", err
	}
	t := stats.Table{
		Title:   "Table 5: Breakdown of coherence misses in the operating system — measured (paper)",
		Columns: workloadColumns("Source of Misses"),
	}
	labels := []struct {
		name string
		cls  stats.CohClass
		key  string
	}{
		{"Barriers (%)", stats.CohBarrier, "barriers"},
		{"Infreq. Com. (%)", stats.CohInfreqComm, "infreq"},
		{"Freq. Shared (%)", stats.CohFreqShared, "freq"},
		{"Locks (%)", stats.CohLock, "locks"},
		{"Other (%)", stats.CohOther, "other"},
	}
	for _, l := range labels {
		cells := []string{l.name}
		for i, o := range outs {
			var total uint64
			for _, v := range o.Counters.OSCohBy {
				total += v
			}
			cells = append(cells, cell(pct(o.Counters.OSCohBy[l.cls], total), PaperTable5[l.key][i]))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

// RenderAll runs every experiment and concatenates the output.
func RenderAll(r *Runner) (string, error) {
	var b strings.Builder
	for _, e := range All() {
		out, err := e.Render(r)
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.ID, err)
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}
