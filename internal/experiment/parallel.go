package experiment

import (
	"context"
	"runtime"
	"sync"
	"time"

	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/trace"
)

// This file is the parallel sweep scheduler: a work-stealing runner
// that fans independent simulation configurations across workers while
// keeping results byte-identical to a serial run. Determinism holds
// because each configuration is itself deterministic (same canonical
// key, same outcome) and results are assembled in input order — the
// schedule changes only *when* a run executes, never what it computes.
// The Runner's content-addressed cache deduplicates configurations that
// appear more than once regardless of which worker gets them first.

// deque is one worker's job queue of indices into the config list.
// The owner pops newest-first from the bottom (its own recently pushed
// work stays cache-warm); thieves steal oldest-first from the top,
// which takes the work the owner is furthest from reaching. Jobs here
// are whole simulations — milliseconds to seconds each — so a plain
// mutex costs nothing measurable and keeps the structure obvious.
type deque struct {
	mu   sync.Mutex
	jobs []int
}

func (d *deque) popBottom() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	i := d.jobs[len(d.jobs)-1]
	d.jobs = d.jobs[:len(d.jobs)-1]
	return i, true
}

func (d *deque) stealTop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) == 0 {
		return 0, false
	}
	i := d.jobs[0]
	d.jobs = d.jobs[1:]
	return i, true
}

// WorkerStats is one scheduler worker's accounting for the last
// RunConfigs call: where its wall clock went (running simulations vs
// idle — queue empty, stealing, or waiting out cancellation) and how
// much of its work it took from other workers' deques. The same
// busy/idle attribution the paper applies to processor stall time,
// applied to the sweep scheduler itself.
type WorkerStats struct {
	// Busy is the wall time spent inside simulation runs.
	Busy time.Duration
	// Idle is the rest of the worker's lifetime: deque scans, steal
	// attempts, and the tail wait after its work ran out.
	Idle time.Duration
	// Runs is the number of configurations this worker executed.
	Runs int
	// Steals is how many of those it took from another worker's deque.
	Steals int
}

// LastSchedulerStats returns the per-worker accounting of the most
// recent RunConfigs call (one entry per worker; a serial run has one).
// Nil until RunConfigs has completed at least once.
func (r *Runner) LastSchedulerStats() []WorkerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStats, len(r.lastSched))
	copy(out, r.lastSched)
	if len(out) == 0 {
		return nil
	}
	return out
}

// workers returns the scheduler width for this Runner's config: 1 when
// parallelism is off, the explicit worker count when one was set, and
// GOMAXPROCS otherwise.
func (r *Runner) workers() int {
	if !r.cfg.Parallel {
		return 1
	}
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunConfigs executes every configuration and returns outcomes in
// input order. With a parallel config the work fans across workers
// with work stealing; duplicated configurations are computed once via
// the Runner cache. A non-nil prog receives each completed run's
// totals (references, OS read misses, cycles) as accumulating deltas.
//
// The first error cancels the remaining work and is returned; partial
// outcomes are discarded.
func (r *Runner) RunConfigs(ctx context.Context, cfgs []core.RunConfig, prog *sim.Progress) ([]*core.Outcome, error) {
	return r.RunConfigsEach(ctx, cfgs, prog, nil)
}

// RunConfigsEach is RunConfigs with a per-completion hook: each, when
// non-nil, is called once per configuration as soon as its outcome is
// available, with the input index and the outcome. Under a parallel
// config the hook fires on worker goroutines, possibly concurrently —
// the caller synchronizes. Callers that need partial results on
// cancellation (a campaign reporting the cells that finished) collect
// them here; the returned slice is still all-or-nothing.
func (r *Runner) RunConfigsEach(ctx context.Context, cfgs []core.RunConfig, prog *sim.Progress, each func(idx int, o *core.Outcome)) ([]*core.Outcome, error) {
	outs := make([]*core.Outcome, len(cfgs))
	n := r.workers()
	if n > len(cfgs) {
		n = len(cfgs)
	}
	if n <= 1 {
		start := time.Now()
		var busy time.Duration
		for i, cfg := range cfgs {
			t0 := time.Now()
			o, err := r.OutcomeConfig(ctx, cfg)
			busy += time.Since(t0)
			if err != nil {
				return nil, err
			}
			outs[i] = o
			publishOutcome(prog, o)
			if each != nil {
				each(i, o)
			}
		}
		r.recordSched([]WorkerStats{{Busy: busy, Idle: time.Since(start) - busy, Runs: len(cfgs)}})
		return outs, nil
	}

	// Deal configurations round-robin so every worker starts with a
	// spread of the input; stealing rebalances whatever the deal got
	// wrong (run times vary by an order of magnitude across systems).
	deques := make([]*deque, n)
	for w := range deques {
		deques[w] = &deque{}
	}
	for i := range cfgs {
		w := i % n
		deques[w].jobs = append(deques[w].jobs, i)
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	// Each worker writes only its own stats slot, so the accounting adds
	// no synchronization to the scheduling loop.
	sched := make([]WorkerStats, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			start := time.Now()
			ws := &sched[self]
			defer func() { ws.Idle = time.Since(start) - ws.Busy }()
			for {
				idx, ok := deques[self].popBottom()
				stolen := false
				for off := 1; !ok && off < n; off++ {
					idx, ok = deques[(self+off)%n].stealTop()
					stolen = ok
				}
				if !ok || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				o, err := r.OutcomeConfig(ctx, cfgs[idx])
				ws.Busy += time.Since(t0)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel(err)
					})
					return
				}
				ws.Runs++
				if stolen {
					ws.Steals++
				}
				outs[idx] = o
				publishOutcome(prog, o)
				if each != nil {
					each(idx, o)
				}
			}
		}(w)
	}
	wg.Wait()
	r.recordSched(sched)
	if firstErr != nil {
		return nil, firstErr
	}
	if ctx.Err() != nil {
		// Workers drained out because the caller's context died, not
		// because the work finished; outs has holes.
		return nil, context.Cause(ctx)
	}
	return outs, nil
}

// recordSched stores the per-worker accounting of a finished
// RunConfigs call for LastSchedulerStats.
func (r *Runner) recordSched(sched []WorkerStats) {
	r.mu.Lock()
	r.lastSched = sched
	r.mu.Unlock()
}

// publishOutcome feeds one completed run's totals to an aggregate
// progress feed.
func publishOutcome(prog *sim.Progress, o *core.Outcome) {
	if prog == nil {
		return
	}
	prog.Publish(o.Refs, o.Counters.DReadMisses[trace.KindOS], o.Counters.Cycles)
}
