// Package report renders the study's normalized stacked-bar figures as
// text, in the visual layout of the paper's charts: one horizontal bar
// per system, segments for the miss or time categories, and the
// numeric total (plus the paper's bar value) as an annotation.
package report

import (
	"fmt"
	"math"
	"strings"
)

// fills are the per-segment fill characters, assigned in segment order.
var fills = []byte{'#', '=', '-', ':', '.', '+', '~', '%'}

// Segment is one stacked component of a bar.
type Segment struct {
	// Label names the component ("block", "coh", "exec"...).
	Label string
	// Value is the component's magnitude in chart units.
	Value float64
}

// Bar is one labeled stacked bar.
type Bar struct {
	// Name labels the bar ("Base", "Blk_Dma"...).
	Name string
	// Segments stack left to right.
	Segments []Segment
	// Annotation prints after the bar ("total=0.49 paper=0.45").
	Annotation string
}

// Total sums the segment values.
func (b Bar) Total() float64 {
	t := 0.0
	for _, s := range b.Segments {
		t += s.Value
	}
	return t
}

// Chart is a group of bars on a shared scale.
type Chart struct {
	// Title prints above the bars.
	Title string
	// Width is the column budget for the longest bar (default 40).
	Width int
	// Bars render top to bottom.
	Bars []Bar
}

// Add appends a bar.
func (c *Chart) Add(b Bar) { c.Bars = append(c.Bars, b) }

// String renders the chart with a legend.
func (c *Chart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxTotal := 0.0
	nameW := 0
	legend := []string{}
	seen := map[string]byte{}
	for _, b := range c.Bars {
		if t := b.Total(); t > maxTotal {
			maxTotal = t
		}
		if len(b.Name) > nameW {
			nameW = len(b.Name)
		}
		for _, s := range b.Segments {
			if _, ok := seen[s.Label]; !ok && s.Label != "" {
				fill := fills[len(seen)%len(fills)]
				seen[s.Label] = fill
				legend = append(legend, fmt.Sprintf("%c %s", fill, s.Label))
			}
		}
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	var out strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&out, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		fmt.Fprintf(&out, "  %-*s |", nameW, b.Name)
		drawn := 0
		want := 0.0
		for _, s := range b.Segments {
			want += s.Value
			// Cumulative rounding keeps the bar length proportional
			// to the running total, not the sum of rounded pieces.
			target := int(math.Round(want / maxTotal * float64(width)))
			n := target - drawn
			if n < 0 {
				n = 0
			}
			out.Write(bytesRepeat(seen[s.Label], n))
			drawn += n
		}
		out.Write(bytesRepeat(' ', width-drawn))
		if b.Annotation != "" {
			fmt.Fprintf(&out, "| %s", b.Annotation)
		} else {
			out.WriteString("|")
		}
		out.WriteByte('\n')
	}
	if len(legend) > 0 {
		fmt.Fprintf(&out, "  %-*s  [%s]\n", nameW, "", strings.Join(legend, "  "))
	}
	return out.String()
}

func bytesRepeat(b byte, n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}
