package report

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func demoChart() *Chart {
	c := &Chart{Title: "demo", Width: 20}
	c.Add(Bar{Name: "Base", Segments: []Segment{{"block", 0.5}, {"other", 0.5}}, Annotation: "total=1.00"})
	c.Add(Bar{Name: "Blk_Dma", Segments: []Segment{{"block", 0.0}, {"other", 0.45}}, Annotation: "total=0.45"})
	return c
}

func TestChartRendersAllParts(t *testing.T) {
	out := demoChart().String()
	for _, want := range []string{"demo", "Base", "Blk_Dma", "total=1.00", "# block", "= other"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, 2 bars, legend
		t.Errorf("chart has %d lines:\n%s", len(lines), out)
	}
}

func TestChartBarLengthsProportional(t *testing.T) {
	out := demoChart().String()
	inner := func(line string) string {
		return line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	}
	baseLine := inner(strings.Split(out, "\n")[1])
	dmaLine := inner(strings.Split(out, "\n")[2])
	baseFill := strings.Count(baseLine, "#") + strings.Count(baseLine, "=")
	dmaFill := strings.Count(dmaLine, "#") + strings.Count(dmaLine, "=")
	if baseFill != 20 {
		t.Errorf("Base bar %d columns, want full width 20", baseFill)
	}
	if dmaFill < 8 || dmaFill > 10 {
		t.Errorf("Blk_Dma bar %d columns, want ~9 (0.45 of 20)", dmaFill)
	}
}

func TestChartEmptyAndZero(t *testing.T) {
	c := &Chart{}
	if out := c.String(); out != "" && strings.TrimSpace(out) != "" {
		t.Errorf("empty chart rendered %q", out)
	}
	c.Add(Bar{Name: "zero", Segments: []Segment{{"x", 0}}})
	out := c.String()
	if !strings.Contains(out, "zero") {
		t.Errorf("zero bar missing:\n%s", out)
	}
}

func TestBarTotal(t *testing.T) {
	b := Bar{Segments: []Segment{{"a", 1.5}, {"b", 0.5}}}
	if b.Total() != 2.0 {
		t.Errorf("Total = %v", b.Total())
	}
}

// Property: every bar's drawn width is within one column of its
// proportional share, and never exceeds the chart width.
func TestChartWidthProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &Chart{Width: 30}
		for i := 0; i < 1+rng.Intn(6); i++ {
			var segs []Segment
			for j := 0; j < 1+rng.Intn(4); j++ {
				segs = append(segs, Segment{Label: string(rune('a' + j)), Value: rng.Float64()})
			}
			c.Add(Bar{Name: "bar", Segments: segs})
		}
		maxTotal := 0.0
		for _, b := range c.Bars {
			if b.Total() > maxTotal {
				maxTotal = b.Total()
			}
		}
		out := c.String()
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		for i, b := range c.Bars {
			line := lines[i]
			inner := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
			if len(inner) != 30 {
				return false
			}
			filled := 30 - strings.Count(inner, " ")
			wantF := b.Total() / maxTotal * 30
			if float64(filled) < wantF-1.5 || float64(filled) > wantF+1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
