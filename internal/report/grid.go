package report

// This file generalizes the paper's figure renderers to arbitrary
// parameter grids: a campaign cell projected to named scalar values at
// a coordinate can be drawn as grouped stacked bars (GridChart, the
// Figure 3 layout at any machine geometry) or compared pairwise along
// one axis (DiffCells, the benchdiff-style machine-readable report).

import (
	"fmt"
	"sort"
	"strings"
)

// GridCell is one completed grid cell: its coordinates on the declared
// axes and the scalar values measured there.
type GridCell struct {
	// Coords locates the cell, e.g. {"workload": "TRFD_4", "cpus":
	// "16", "coherence": "directory", "system": "BCPref"}.
	Coords map[string]string `json:"coords"`
	// Values are the cell's measurements by metric name.
	Values map[string]float64 `json:"values"`
}

// coordKey canonically renders a cell's coordinates with one axis
// removed: "axis=value" pairs, axis-sorted, space-joined. Cells with
// equal keys differ only on the dropped axis.
func coordKey(coords map[string]string, drop string) string {
	axes := make([]string, 0, len(coords))
	for a := range coords {
		if a != drop {
			axes = append(axes, a)
		}
	}
	sort.Strings(axes)
	parts := make([]string, len(axes))
	for i, a := range axes {
		parts[i] = a + "=" + coords[a]
	}
	return strings.Join(parts, " ")
}

// GridChart renders a grid as grouped stacked bars: cells are grouped
// by every coordinate except rowAxis (one chart block per group, in
// first-appearance order, titled with the fixed coordinates), with one
// bar per rowAxis value. Segment values stack in the given order and
// are normalized to the group's first bar's norm value — the way the
// paper normalizes each figure to Base.
func GridChart(title, rowAxis string, segments []string, norm string, cells []GridCell) string {
	type group struct {
		title string
		cells []GridCell
	}
	var groups []*group
	index := map[string]*group{}
	for _, c := range cells {
		key := coordKey(c.Coords, rowAxis)
		g, ok := index[key]
		if !ok {
			g = &group{title: key}
			index[key] = g
			groups = append(groups, g)
		}
		g.cells = append(g.cells, c)
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, g := range groups {
		chart := &Chart{Title: fmt.Sprintf("  %s:", g.title), Width: 44}
		denom := g.cells[0].Values[norm]
		if denom == 0 {
			denom = 1
		}
		for _, c := range g.cells {
			segs := make([]Segment, len(segments))
			for i, name := range segments {
				segs[i] = Segment{Label: name, Value: c.Values[name] / denom}
			}
			chart.Add(Bar{
				Name:       c.Coords[rowAxis],
				Segments:   segs,
				Annotation: fmt.Sprintf("total=%.2f", c.Values[norm]/denom),
			})
		}
		b.WriteString(chart.String())
	}
	return b.String()
}

// DiffRow is one benchdiff-style comparison: one metric at one grid
// coordinate, evaluated at two values of the diffed axis.
type DiffRow struct {
	// Coords are the coordinates the two cells share (the diffed axis
	// is removed).
	Coords map[string]string `json:"coords"`
	Metric string            `json:"metric"`
	From   float64           `json:"from"`
	To     float64           `json:"to"`
	// DeltaPct is (to-from)/from in percent; 0 when from is 0.
	DeltaPct float64 `json:"delta_pct"`
}

// DiffCells pairs cells that agree on every coordinate except axis and
// reports, for each listed metric, the delta between the cell at
// axis=from and the cell at axis=to. Coordinates present on only one
// side are skipped. Rows keep the cells' first-appearance order.
func DiffCells(cells []GridCell, axis, from, to string, metrics []string) []DiffRow {
	type pair struct {
		coords   map[string]string
		from, to *GridCell
	}
	var order []string
	pairs := map[string]*pair{}
	for i := range cells {
		c := &cells[i]
		v, ok := c.Coords[axis]
		if !ok || (v != from && v != to) {
			continue
		}
		key := coordKey(c.Coords, axis)
		p, seen := pairs[key]
		if !seen {
			coords := make(map[string]string, len(c.Coords)-1)
			for a, val := range c.Coords {
				if a != axis {
					coords[a] = val
				}
			}
			p = &pair{coords: coords}
			pairs[key] = p
			order = append(order, key)
		}
		if v == from {
			p.from = c
		} else {
			p.to = c
		}
	}
	var rows []DiffRow
	for _, key := range order {
		p := pairs[key]
		if p.from == nil || p.to == nil {
			continue
		}
		for _, m := range metrics {
			f, t := p.from.Values[m], p.to.Values[m]
			var pct float64
			if f != 0 {
				pct = (t - f) / f * 100
			}
			rows = append(rows, DiffRow{Coords: p.coords, Metric: m, From: f, To: t, DeltaPct: pct})
		}
	}
	return rows
}
