// Package cluster is the coordinator/worker layer of ossimd: a
// consistent-hash ring that routes canonical result keys to owning
// nodes (so each unique configuration is computed exactly once
// cluster-wide), a heartbeat-based membership table that detects lost
// workers, a wire codec that ships run configurations to peers, and
// the worker-side agent that registers and heartbeats against the
// coordinator.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// defaultVnodes is the number of ring points per node. 64 virtual
// nodes keep the key split within a few percent of even for small
// clusters without making ring rebuilds expensive.
const defaultVnodes = 64

// Ring is a consistent-hash ring over node ids. Keys and nodes hash
// onto the same 64-bit circle; a key is owned by the first node point
// clockwise from it. Adding or removing one node moves only the keys
// adjacent to its points — the property that keeps a worker loss from
// reshuffling the whole cluster's routing.
//
// Not safe for concurrent use; Membership serializes access.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with vnodes points per node
// (0 = defaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// ringHash maps a string onto the circle. SHA-256 keeps the placement
// independent of Go's seeded map hash, so every node computes the
// same ring from the same membership.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node's points. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	var buf [10]byte
	for i := 0; i < r.vnodes; i++ {
		n := binary.PutUvarint(buf[:], uint64(i))
		r.points = append(r.points, ringPoint{
			hash: ringHash(node + "#" + string(buf[:n])),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node's points. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key, or false for an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns up to max distinct nodes in ring order starting at
// key's owner — the failover preference list: when the owner is lost,
// the next node in the sequence inherits the key, which is exactly
// where a rebuilt ring without the owner would route it.
func (r *Ring) Sequence(key string, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.nodes) {
		max = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i := 0; i < len(r.points) && len(seq) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			seq = append(seq, p.node)
		}
	}
	return seq
}
