package cluster

import (
	"sort"
	"sync"
	"time"
)

// NodeState is a worker's health as the coordinator sees it.
type NodeState string

const (
	// NodeAlive: heartbeats arriving; the node owns ring keys.
	NodeAlive NodeState = "alive"
	// NodeSuspect: heartbeats missed (or a forward failed); the node is
	// out of the ring — its keys re-route to the next ring owner — but
	// a heartbeat resurrects it.
	NodeSuspect NodeState = "suspect"
	// NodeDead: suspect long enough to give up on. Kept in the table
	// for operator visibility; re-registration resurrects it.
	NodeDead NodeState = "dead"
)

// NodeStats is the load snapshot a worker reports with each heartbeat
// and GET /v1/cluster serves per node.
type NodeStats struct {
	// QueueDepth is the worker's pending job-queue length.
	QueueDepth int `json:"queue_depth"`
	// StoreRecords is the worker's durable-store record count.
	StoreRecords int `json:"store_records"`
	// Executions is how many simulations the node actually ran (not
	// served from any cache) — the number the exactly-once invariant
	// is audited with.
	Executions uint64 `json:"executions"`
}

// NodeInfo is one row of the cluster's node table.
type NodeInfo struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	State    NodeState `json:"state"`
	LastSeen time.Time `json:"last_seen"`
	Stats    NodeStats `json:"stats"`
}

// deadAfter is how many heartbeat timeouts a suspect node gets before
// it is declared dead.
const deadAfter = 4

// Membership is the coordinator's view of its workers: a node table
// driven by registrations and heartbeats, and the consistent-hash ring
// over the nodes currently believed alive. Safe for concurrent use.
type Membership struct {
	timeout time.Duration
	now     func() time.Time // test seam; time.Now by default

	mu    sync.Mutex
	ring  *Ring
	nodes map[string]*NodeInfo
}

// NewMembership returns an empty membership expiring nodes whose last
// heartbeat is older than timeout.
func NewMembership(timeout time.Duration) *Membership {
	return &Membership{
		timeout: timeout,
		now:     time.Now,
		ring:    NewRing(0),
		nodes:   make(map[string]*NodeInfo),
	}
}

// Timeout returns the heartbeat expiry the membership enforces —
// workers derive their heartbeat period from it.
func (m *Membership) Timeout() time.Duration { return m.timeout }

// Register adds (or resurrects) a worker and reports whether it was
// already known. Registration implies liveness: the node enters the
// ring immediately.
func (m *Membership) Register(id, addr string) (known bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, known := m.nodes[id]
	if !known {
		n = &NodeInfo{ID: id}
		m.nodes[id] = n
	}
	n.Addr = addr
	n.State = NodeAlive
	n.LastSeen = m.now()
	m.ring.Add(id)
	return known
}

// Heartbeat refreshes a worker's liveness and load snapshot. It
// reports false for an unknown id — the worker must re-register (the
// coordinator may have restarted and lost the table).
func (m *Membership) Heartbeat(id string, stats NodeStats) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok {
		return false
	}
	n.State = NodeAlive
	n.LastSeen = m.now()
	n.Stats = stats
	m.ring.Add(id)
	return true
}

// MarkSuspect takes a node out of the ring immediately — called when a
// forward to it fails, so the next route for its keys does not wait a
// heartbeat timeout to move. A later heartbeat resurrects it.
func (m *Membership) MarkSuspect(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.nodes[id]; ok && n.State == NodeAlive {
		n.State = NodeSuspect
		m.ring.Remove(id)
	}
}

// Sweep applies heartbeat expiry: alive nodes silent past the timeout
// turn suspect and leave the ring (their ids are returned — the
// coordinator re-queues what they owned), suspect nodes silent past
// deadAfter timeouts are declared dead. Call it periodically.
func (m *Membership) Sweep() (lost []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	for id, n := range m.nodes {
		silent := now.Sub(n.LastSeen)
		switch n.State {
		case NodeAlive:
			if silent > m.timeout {
				n.State = NodeSuspect
				m.ring.Remove(id)
				lost = append(lost, id)
			}
		case NodeSuspect:
			if silent > deadAfter*m.timeout {
				n.State = NodeDead
			}
		}
	}
	sort.Strings(lost)
	return lost
}

// Snapshot returns the node table sorted by id.
func (m *Membership) Snapshot() []NodeInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows := make([]NodeInfo, 0, len(m.nodes))
	for _, n := range m.nodes {
		rows = append(rows, *n)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows
}

// AliveCount returns how many nodes are in the ring.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Len()
}

// Sequence returns up to max live nodes in ring order starting at
// key's owner — the forward preference list.
func (m *Membership) Sequence(key string, max int) []NodeInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.ring.Sequence(key, max)
	seq := make([]NodeInfo, 0, len(ids))
	for _, id := range ids {
		if n, ok := m.nodes[id]; ok {
			seq = append(seq, *n)
		}
	}
	return seq
}
