package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"oscachesim/internal/core"
	"oscachesim/internal/scenario"
	"oscachesim/internal/sim"
	"oscachesim/internal/store"
	"oscachesim/internal/workload"
)

// ComputePath is the internal endpoint workers serve compute forwards
// on.
const ComputePath = "/v1/internal/compute"

// ComputeRequest is the wire form of one forwarded simulation: every
// result-affecting field of core.RunConfig plus the coordinator's
// canonical key, which the worker recomputes and verifies — a version
// skew between nodes (different SimVersion, divergent config
// serialization) fails loudly instead of poisoning the cluster's
// content-addressed caches.
type ComputeRequest struct {
	Key          string         `json:"key"`
	Workload     string         `json:"workload,omitempty"`
	Scenario     *scenario.Spec `json:"scenario,omitempty"`
	System       string         `json:"system"`
	Scale        int            `json:"scale,omitempty"`
	Seed         int64          `json:"seed,omitempty"`
	Machine      *sim.Params    `json:"machine,omitempty"`
	DeferredCopy bool           `json:"deferred_copy,omitempty"`
	PureUpdate   bool           `json:"pure_update,omitempty"`
	// UpdateSet is only meaningful when HasUpdateSet is true: nil and
	// empty update sets are distinct configurations (see
	// core.RunConfig.UpdateSet) and JSON cannot tell them apart alone.
	UpdateSet    []uint64 `json:"update_set,omitempty"`
	HasUpdateSet bool     `json:"has_update_set,omitempty"`
	PrefDist     int      `json:"pref_dist,omitempty"`
}

// EncodeConfig renders a run configuration for forwarding. It refuses
// configurations that cannot leave the process: an attached Monitor
// must observe a local run, and a conflict census (TrackConflicts)
// returns process-local data the wire format does not carry.
func EncodeConfig(cfg core.RunConfig) (*ComputeRequest, error) {
	if cfg.Monitor != nil {
		return nil, errors.New("cluster: a monitored run cannot be forwarded")
	}
	if cfg.TrackConflicts {
		return nil, errors.New("cluster: a conflict-census run cannot be forwarded")
	}
	return &ComputeRequest{
		Key:          cfg.CanonicalKey(),
		Workload:     string(cfg.Workload),
		Scenario:     cfg.Scenario,
		System:       cfg.System.String(),
		Scale:        cfg.Scale,
		Seed:         cfg.Seed,
		Machine:      cfg.Machine,
		DeferredCopy: cfg.DeferredCopy,
		PureUpdate:   cfg.PureUpdate,
		UpdateSet:    cfg.UpdateSet,
		HasUpdateSet: cfg.UpdateSet != nil,
		PrefDist:     cfg.PrefDist,
	}, nil
}

// Config rebuilds the run configuration and verifies its canonical key
// matches the coordinator's — the receiving side of the skew check.
func (cr *ComputeRequest) Config() (core.RunConfig, error) {
	sys, err := core.ParseSystem(cr.System)
	if err != nil {
		return core.RunConfig{}, fmt.Errorf("cluster: %w", err)
	}
	cfg := core.RunConfig{
		Workload:     workload.Name(cr.Workload),
		Scenario:     cr.Scenario,
		System:       sys,
		Scale:        cr.Scale,
		Seed:         cr.Seed,
		Machine:      cr.Machine,
		DeferredCopy: cr.DeferredCopy,
		PureUpdate:   cr.PureUpdate,
		PrefDist:     cr.PrefDist,
	}
	if cr.HasUpdateSet {
		cfg.UpdateSet = cr.UpdateSet
		if cfg.UpdateSet == nil {
			cfg.UpdateSet = []uint64{}
		}
	}
	if got := cfg.CanonicalKey(); got != cr.Key {
		return core.RunConfig{}, fmt.Errorf(
			"cluster: key mismatch (version skew?): coordinator sent %.12s…, this node computes %.12s…",
			cr.Key, got)
	}
	return cfg, nil
}

// RetryAfterError reports a worker that answered 429: it is healthy
// but saturated, and asked to be retried after the given delay —
// distinct from a connection failure, which marks the node suspect.
type RetryAfterError struct {
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("cluster: worker saturated, retry after %s", e.After)
}

// Client forwards compute requests to workers.
type Client struct {
	// HTTP is the transport; nil uses http.DefaultClient. Deadlines
	// come from the per-call context (the job timeout), not a global
	// client timeout.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Compute asks the worker at baseURL to simulate one configuration and
// returns its durable result record. A 429 maps to *RetryAfterError;
// any transport failure or non-200 means the worker should be treated
// as unavailable for this key.
func (c *Client) Compute(ctx context.Context, baseURL string, creq *ComputeRequest) (*store.Record, error) {
	body, err := json.Marshal(creq)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+ComputePath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, &RetryAfterError{After: after}
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: forward to %s: %s: %s", baseURL, resp.Status, bytes.TrimSpace(snippet))
	}
	var rec store.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("cluster: decoding %s's result: %w", baseURL, err)
	}
	if rec.Key != creq.Key {
		return nil, fmt.Errorf("cluster: %s returned record %.12s… for key %.12s…", baseURL, rec.Key, creq.Key)
	}
	return &rec, nil
}
