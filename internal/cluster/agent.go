package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// Wire paths of the coordinator's membership endpoints (also listed in
// the server's routing table and API.md).
const (
	RegisterPath  = "/v1/cluster/nodes"
	heartbeatPath = "/v1/cluster/nodes/%s/heartbeat"
)

// RegisterRequest is the body of POST /v1/cluster/nodes: a worker
// announcing itself.
type RegisterRequest struct {
	// ID is the worker's stable identity (ring placement).
	ID string `json:"id"`
	// Addr is the base URL the coordinator forwards compute to.
	Addr string `json:"addr"`
}

// RegisterResponse tells the worker the coordinator's expectations.
type RegisterResponse struct {
	// Known reports a re-registration (the coordinator already had the
	// node, e.g. after a worker restart under the same id).
	Known bool `json:"known"`
	// HeartbeatMS is the period the worker must heartbeat at to stay
	// alive (a fraction of the coordinator's expiry timeout).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// Agent is the worker-side membership loop: register with the
// coordinator, heartbeat at the period it dictates (carrying the
// node's live load snapshot), and re-register whenever the coordinator
// forgets us — a coordinator restart loses its node table, and the
// 404 it then answers heartbeats with is the signal to start over.
type Agent struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// NodeID is this worker's stable identity.
	NodeID string
	// Advertise is this worker's own base URL, as reachable from the
	// coordinator.
	Advertise string
	// Stats, when non-nil, supplies the load snapshot each heartbeat
	// carries.
	Stats func() NodeStats
	// Logger, when non-nil, receives lifecycle logs.
	Logger *slog.Logger
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client

	heartbeat time.Duration
}

func (a *Agent) http() *http.Client {
	if a.HTTP != nil {
		return a.HTTP
	}
	return http.DefaultClient
}

// Run drives the register/heartbeat loop until ctx is canceled.
// Failures never stop the loop: an unreachable coordinator is retried
// with backoff, because the worker keeps serving compute regardless.
func (a *Agent) Run(ctx context.Context) {
	backoff := time.Second
	for ctx.Err() == nil {
		if err := a.register(ctx); err != nil {
			if a.Logger != nil {
				a.Logger.Warn("cluster register failed", "coordinator", a.Coordinator, "err", err)
			}
			if !sleep(ctx, backoff) {
				return
			}
			if backoff < 30*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = time.Second
		if a.Logger != nil {
			a.Logger.Info("registered with coordinator",
				"coordinator", a.Coordinator, "node_id", a.NodeID, "heartbeat", a.heartbeat)
		}
		// Heartbeat until the coordinator forgets us or ctx ends.
		for {
			if !sleep(ctx, a.heartbeat) {
				return
			}
			known, err := a.sendHeartbeat(ctx)
			if err != nil {
				if a.Logger != nil {
					a.Logger.Warn("heartbeat failed", "err", err)
				}
				break // re-register (also covers coordinator restarts)
			}
			if !known {
				break // coordinator lost the table: re-register
			}
		}
	}
}

// register announces the worker and adopts the coordinator's heartbeat
// period.
func (a *Agent) register(ctx context.Context) error {
	var resp RegisterResponse
	err := a.post(ctx, a.Coordinator+RegisterPath,
		RegisterRequest{ID: a.NodeID, Addr: a.Advertise}, &resp)
	if err != nil {
		return err
	}
	a.heartbeat = time.Duration(resp.HeartbeatMS) * time.Millisecond
	if a.heartbeat <= 0 {
		a.heartbeat = time.Second
	}
	return nil
}

// sendHeartbeat reports liveness and load; known=false means the
// coordinator answered 404 and the agent must re-register.
func (a *Agent) sendHeartbeat(ctx context.Context) (known bool, err error) {
	var stats NodeStats
	if a.Stats != nil {
		stats = a.Stats()
	}
	url := a.Coordinator + fmt.Sprintf(heartbeatPath, a.NodeID)
	err = a.post(ctx, url, stats, nil)
	if err != nil {
		var se *statusError
		if errors.As(err, &se) && se.code == http.StatusNotFound {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// statusError is a non-2xx response.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("%d: %s", e.code, e.body) }

// post sends one JSON request and decodes the response into out (when
// non-nil).
func (a *Agent) post(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(snippet))}
	}
	if out != nil {
		return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}

// sleep waits d or until ctx ends; it reports whether the full wait
// happened.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
