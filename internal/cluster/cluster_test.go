package cluster

import (
	"fmt"
	"testing"
	"time"

	"oscachesim/internal/core"
	"oscachesim/internal/scenario"
	"oscachesim/internal/sim"
)

func TestRingDistributesAndIsStable(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"w1", "w2", "w3"} {
		r.Add(n)
	}
	counts := map[string]int{}
	owners := map[string]string{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", i)
		own, ok := r.Owner(key)
		if !ok {
			t.Fatal("empty ring?")
		}
		counts[own]++
		owners[key] = own
	}
	for n, c := range counts {
		if c < 500 || c > 1800 {
			t.Fatalf("grossly uneven split: %s owns %d of 3000 (%v)", n, c, counts)
		}
	}
	// Removing one node must not move keys between surviving nodes.
	r.Remove("w2")
	for key, prev := range owners {
		now, _ := r.Owner(key)
		if prev != "w2" && now != prev {
			t.Fatalf("key %s moved %s -> %s though its owner survived", key, prev, now)
		}
		if prev == "w2" && now == "w2" {
			t.Fatalf("key %s still routed to removed node", key)
		}
	}
}

func TestRingSequenceMatchesFailover(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"w1", "w2", "w3"} {
		r.Add(n)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key, 3)
		if len(seq) != 3 {
			t.Fatalf("want 3 distinct nodes, got %v", seq)
		}
		// The second node of the sequence is where a ring without the
		// first would route the key — the failover invariant.
		r2 := NewRing(0)
		for _, n := range []string{"w1", "w2", "w3"} {
			if n != seq[0] {
				r2.Add(n)
			}
		}
		if own, _ := r2.Owner(key); own != seq[1] {
			t.Fatalf("key %s: sequence says %v but owner-after-loss is %s", key, seq, own)
		}
	}
}

func TestMembershipLifecycle(t *testing.T) {
	m := NewMembership(time.Second)
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	if known := m.Register("w1", "http://w1"); known {
		t.Fatal("fresh node reported known")
	}
	m.Register("w2", "http://w2")
	if got := m.AliveCount(); got != 2 {
		t.Fatalf("alive = %d, want 2", got)
	}
	if !m.Heartbeat("w1", NodeStats{QueueDepth: 3}) {
		t.Fatal("heartbeat for known node rejected")
	}
	if m.Heartbeat("ghost", NodeStats{}) {
		t.Fatal("heartbeat for unknown node accepted")
	}

	// w2 goes silent past the timeout: one sweep loses it.
	now = now.Add(1500 * time.Millisecond)
	m.Heartbeat("w1", NodeStats{})
	lost := m.Sweep()
	if len(lost) != 1 || lost[0] != "w2" {
		t.Fatalf("lost = %v, want [w2]", lost)
	}
	if got := m.AliveCount(); got != 1 {
		t.Fatalf("alive = %d after loss, want 1", got)
	}
	// Its keys re-route to the survivor.
	seq := m.Sequence("anything", 2)
	if len(seq) != 1 || seq[0].ID != "w1" {
		t.Fatalf("sequence after loss = %v", seq)
	}

	// A heartbeat resurrects the suspect.
	if !m.Heartbeat("w2", NodeStats{}) {
		t.Fatal("suspect node lost from the table")
	}
	if got := m.AliveCount(); got != 2 {
		t.Fatalf("alive = %d after resurrection, want 2", got)
	}

	// Silent long enough: declared dead, still visible in the table.
	now = now.Add(10 * time.Second)
	m.Sweep() // alive -> suspect
	now = now.Add(10 * time.Second)
	m.Sweep() // suspect -> dead
	for _, row := range m.Snapshot() {
		if row.State != NodeDead {
			t.Fatalf("node %s state %s, want dead", row.ID, row.State)
		}
	}
}

func TestMarkSuspectReroutesImmediately(t *testing.T) {
	m := NewMembership(time.Hour) // sweep will never fire
	m.Register("w1", "http://w1")
	m.Register("w2", "http://w2")
	m.MarkSuspect("w1")
	if got := m.AliveCount(); got != 1 {
		t.Fatalf("alive = %d after MarkSuspect, want 1", got)
	}
	seq := m.Sequence("key", 2)
	if len(seq) != 1 || seq[0].ID != "w2" {
		t.Fatalf("sequence = %v, want only w2", seq)
	}
}

func TestComputeRequestRoundTrip(t *testing.T) {
	base := sim.DefaultParams()
	base.NumCPUs = 8
	base.Coherence = sim.CoherenceDirectory
	spec, err := scenario.Preset("sharing")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []core.RunConfig{
		{Workload: "TRFD_4", System: core.BCPref, Scale: 3, Seed: 7},
		{Workload: "TRFD+Make", System: core.Base, Machine: &base, DeferredCopy: true},
		{Scenario: spec, System: core.BCohRelUp, Seed: 2, UpdateSet: []uint64{}},
		{Workload: "TRFD_4", System: core.BCohRelUp, UpdateSet: []uint64{3, 5}, PrefDist: 4, PureUpdate: true},
	}
	for i, cfg := range cfgs {
		creq, err := EncodeConfig(cfg)
		if err != nil {
			t.Fatalf("cfg[%d]: EncodeConfig: %v", i, err)
		}
		got, err := creq.Config()
		if err != nil {
			t.Fatalf("cfg[%d]: Config: %v", i, err)
		}
		if got.CanonicalKey() != cfg.CanonicalKey() {
			t.Fatalf("cfg[%d]: key drifted across the wire", i)
		}
	}
}

func TestComputeRequestRejectsUnforwardable(t *testing.T) {
	if _, err := EncodeConfig(core.RunConfig{Workload: "TRFD_4", TrackConflicts: true}); err == nil {
		t.Fatal("conflict-census config encoded")
	}
	if _, err := EncodeConfig(core.RunConfig{Workload: "TRFD_4",
		Monitor: func(*sim.Simulator, sim.Params) {}}); err == nil {
		t.Fatal("monitored config encoded")
	}
}

func TestComputeRequestDetectsKeyMismatch(t *testing.T) {
	creq, err := EncodeConfig(core.RunConfig{Workload: "TRFD_4", System: core.Base})
	if err != nil {
		t.Fatal(err)
	}
	creq.Key = "not-the-real-key"
	if _, err := creq.Config(); err == nil {
		t.Fatal("key mismatch accepted")
	}
}
