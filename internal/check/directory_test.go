package check

import (
	"context"
	"strings"
	"testing"

	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/workload"
)

// dirMachine returns the paper's machine scaled to ncpus processors
// under directory coherence.
func dirMachine(ncpus int) *sim.Params {
	p := sim.DefaultParams()
	p.NumCPUs = ncpus
	p.Coherence = sim.CoherenceDirectory
	return &p
}

// TestDirectoryDifferential runs the extended oracle in lockstep with
// the directory-coherent machine beyond the snooping bus's reach. The
// 16-CPU leg covers the base system, the relocated+update kernel
// (whose Update page attribute the directory protocol must ignore)
// and the DMA engine (whose memory writes downgrade the owner); the
// 64-CPU leg is the scale stress and is skipped under -short.
func TestDirectoryDifferential(t *testing.T) {
	cases := []struct {
		name  string
		ncpus int
		sys   core.System
		w     workload.Name
		scale int
		long  bool
	}{
		{"16cpu/shell-base", 16, core.Base, workload.Shell, testScale, false},
		{"16cpu/shell-bcohrelup", 16, core.BCohRelUp, workload.Shell, testScale, false},
		{"16cpu/shell-blkdma", 16, core.BlkDma, workload.Shell, testScale, false},
		{"64cpu/shell-base", 64, core.Base, workload.Shell, 2, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("64-CPU differential skipped in -short mode")
			}
			o, err := Differential(context.Background(), core.RunConfig{
				Workload: tc.w, System: tc.sys, Scale: tc.scale, Seed: 1,
				Machine: dirMachine(tc.ncpus),
			})
			if err != nil {
				t.Fatal(err)
			}
			if o.Refs == 0 {
				t.Fatal("no references simulated")
			}
			if o.Counters.Bus.TotalTransactions() == 0 {
				t.Fatal("directory machine produced no home-node traffic")
			}
		})
	}
}

// dirTamperer corrupts the first directory-update event's sharer
// count before the oracle sees it.
type dirTamperer struct {
	inner    sim.Observer
	tampered bool
}

func (t *dirTamperer) Observe(ev sim.Event) {
	if !t.tampered && ev.Kind == sim.EvDirUpdate {
		ev.SharerCount++
		t.tampered = true
	}
	t.inner.Observe(ev)
}

// TestDirectoryOracleDetectsCorruptedEntry is the mutation smoke test
// for the directory tables: a corrupted sharer vector must surface as
// a divergence naming the directory check that failed.
func TestDirectoryOracleDetectsCorruptedEntry(t *testing.T) {
	var k *Checker
	var tam *dirTamperer
	_, err := core.Run(context.Background(), core.RunConfig{
		Workload: workload.Shell, System: core.Base, Scale: testScale, Seed: 1,
		Machine: dirMachine(16),
		Monitor: func(s *sim.Simulator, _ sim.Params) {
			k = Attach(s)
			tam = &dirTamperer{inner: k}
			s.SetObserver(tam)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tam.tampered {
		t.Fatal("directory run emitted no EvDirUpdate to corrupt")
	}
	divs := k.Report()
	if len(divs) == 0 {
		t.Fatal("oracle missed a corrupted directory entry")
	}
	if !strings.Contains(divs[0].What, "directory") {
		t.Errorf("first divergence is not a directory check: %v", divs[0])
	}
}
