package check

import (
	"context"
	"fmt"

	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/stats"
	"oscachesim/internal/trace"
	"oscachesim/internal/workload"
)

// VerifyCounters cross-checks the simulator's measurement record
// against the oracle's independent event tallies: reference and
// operation counts per mode, read-miss counts per mode, and the
// Table 2 / Table 5 classification histograms.
func (k *Checker) VerifyCounters(c stats.Counters, refs uint64) error {
	if k.refs != refs {
		return fmt.Errorf("check: oracle saw %d references, simulator reports %d", k.refs, refs)
	}
	for m := 0; m < stats.NumModes; m++ {
		if k.instrs[m] != c.Instrs[m] {
			return fmt.Errorf("check: mode %d instruction count: oracle %d, counters %d", m, k.instrs[m], c.Instrs[m])
		}
		if k.reads[m] != c.DReads[m] {
			return fmt.Errorf("check: mode %d read count: oracle %d, counters %d", m, k.reads[m], c.DReads[m])
		}
		if k.writes[m] != c.DWrites[m] {
			return fmt.Errorf("check: mode %d write count: oracle %d, counters %d", m, k.writes[m], c.DWrites[m])
		}
		if k.misses[m] != c.DReadMisses[m] {
			return fmt.Errorf("check: mode %d read misses: oracle %d, counters %d", m, k.misses[m], c.DReadMisses[m])
		}
	}
	for i := stats.MissClass(0); i < stats.NumMissClasses; i++ {
		if k.osMissBy[i] != c.OSMissBy[i] {
			return fmt.Errorf("check: OS %s misses: oracle %d, counters %d", i, k.osMissBy[i], c.OSMissBy[i])
		}
	}
	for i := stats.CohClass(0); i < stats.NumCohClasses; i++ {
		if k.osCohBy[i] != c.OSCohBy[i] {
			return fmt.Errorf("check: OS coherence misses via %s: oracle %d, counters %d", i, k.osCohBy[i], c.OSCohBy[i])
		}
	}
	return nil
}

// VerifyOutcome checks the conservation laws every run must satisfy,
// independent of any attached oracle:
//
//   - the Table 2 classes sum to the OS read-miss count and the
//     Table 5 classes sum to the coherence-miss count;
//   - misses never exceed references (hits = reads - misses >= 0);
//   - the per-mode time breakdowns sum exactly to the processors'
//     local clocks, and the reported cycle count is their maximum;
//   - derived block-operation and hot-spot tallies stay within their
//     parent counts.
func VerifyOutcome(o *core.Outcome) error {
	c := &o.Counters
	var missSum uint64
	for _, n := range c.OSMissBy {
		missSum += n
	}
	if missSum != c.DReadMisses[trace.KindOS] {
		return fmt.Errorf("check: OS miss classes sum to %d, OS read misses %d",
			missSum, c.DReadMisses[trace.KindOS])
	}
	var cohSum uint64
	for _, n := range c.OSCohBy {
		cohSum += n
	}
	if cohSum != c.OSMissBy[stats.MissCoherence] {
		return fmt.Errorf("check: coherence sub-classes sum to %d, coherence misses %d",
			cohSum, c.OSMissBy[stats.MissCoherence])
	}
	for m := 0; m < stats.NumModes; m++ {
		if c.DReadMisses[m] > c.DReads[m] {
			return fmt.Errorf("check: mode %d has %d read misses for %d reads",
				m, c.DReadMisses[m], c.DReads[m])
		}
	}
	if len(o.CPUTime) > 0 {
		var sum, maxT uint64
		for _, t := range o.CPUTime {
			sum += t
			if t > maxT {
				maxT = t
			}
		}
		if got := c.TotalTime(); got != sum {
			return fmt.Errorf("check: time breakdowns sum to %d cycles, CPU clocks to %d", got, sum)
		}
		if c.Cycles != maxT {
			return fmt.Errorf("check: reported %d cycles, max CPU clock %d", c.Cycles, maxT)
		}
		for i, t := range o.CPUTime {
			if t > c.Cycles {
				return fmt.Errorf("check: cpu%d clock %d exceeds total cycles %d", i, t, c.Cycles)
			}
		}
	}
	b := c.Block
	if b.SrcLinesCached > b.SrcLinesTotal {
		return fmt.Errorf("check: %d cached source lines of %d total", b.SrcLinesCached, b.SrcLinesTotal)
	}
	if b.DstLinesL2Owned+b.DstLinesL2Shared > b.DstLinesTotal {
		return fmt.Errorf("check: %d classified destination lines of %d total",
			b.DstLinesL2Owned+b.DstLinesL2Shared, b.DstLinesTotal)
	}
	if c.OSHotSpotMisses > c.DReadMisses[trace.KindOS] {
		return fmt.Errorf("check: %d hot-spot misses of %d OS read misses",
			c.OSHotSpotMisses, c.DReadMisses[trace.KindOS])
	}
	var spotSum uint64
	for _, n := range c.OSSpotMisses {
		spotSum += n
	}
	if spotSum > c.OSHotSpotMisses {
		return fmt.Errorf("check: per-spot misses sum to %d of %d hot-spot misses",
			spotSum, c.OSHotSpotMisses)
	}
	if c.LatePrefetches > c.Prefetches {
		return fmt.Errorf("check: %d late prefetches of %d issued", c.LatePrefetches, c.Prefetches)
	}
	return nil
}

// Differential runs one configuration with the oracle attached and
// returns the outcome, failing if the oracle diverged, the counters
// disagree with the oracle's tallies, or a conservation law broke.
func Differential(ctx context.Context, cfg core.RunConfig) (*core.Outcome, error) {
	var k *Checker
	cfg.Monitor = func(s *sim.Simulator, _ sim.Params) { k = Attach(s) }
	o, err := core.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if err := k.Err(); err != nil {
		return o, err
	}
	if err := k.VerifyCounters(o.Counters, o.Refs); err != nil {
		return o, err
	}
	if err := VerifyOutcome(o); err != nil {
		return o, err
	}
	return o, nil
}

// Monotonicity checks the cache-geometry law: on the same trace, a
// larger primary data cache must not increase the data-read miss
// count. sizes must be ascending. slackPct tolerates the small
// non-monotonicities a direct-mapped cache can exhibit when the set
// mapping shifts (0 demands strict monotonicity).
func Monotonicity(ctx context.Context, w workload.Name, sys core.System, scale int, seed int64, sizes []uint64, slackPct float64) error {
	prev := uint64(0)
	for i, size := range sizes {
		p := sim.DefaultParams()
		p.L1D.Size = size
		o, err := core.Run(ctx, core.RunConfig{
			Workload: w, System: sys, Scale: scale, Seed: seed, Machine: &p,
		})
		if err != nil {
			return err
		}
		misses := o.Counters.TotalDReadMisses()
		if i > 0 {
			limit := prev + uint64(float64(prev)*slackPct/100)
			if misses > limit {
				return fmt.Errorf("check: %s/%s: growing L1D %d -> %d bytes raised read misses %d -> %d (slack %.1f%%)",
					w, sys, sizes[i-1], size, prev, misses, slackPct)
			}
		}
		prev = misses
	}
	return nil
}
