package check

import (
	"context"
	"testing"

	"oscachesim/internal/core"
	"oscachesim/internal/scenario"
)

// TestScenarioDifferential runs every scenario preset with the oracle
// attached, on the paper's 4-CPU snooping machine and on a 16-CPU
// directory machine. The presets cover every scenario emitter: the
// false-sharing trio (packed, padded and chunked counter layouts),
// pure sharing traffic, and the two-phase composite with kernel
// services and block operations — so a divergence in any emitter's
// address arithmetic or the simulator's handling of it fails here.
func TestScenarioDifferential(t *testing.T) {
	systems := map[string]core.System{
		"fs-naive":   core.Base,
		"fs-padded":  core.Base,
		"fs-chunked": core.BCohRelUp, // update protocol against RMW ping-pong
		"sharing":    core.Base,
		"os-mix":     core.BCPref, // full optimization stack over block ops
	}
	for _, name := range scenario.PresetNames() {
		name := name
		sys, ok := systems[name]
		if !ok {
			sys = core.Base
		}
		t.Run("snoop4/"+name, func(t *testing.T) {
			spec, err := scenario.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			o, err := Differential(context.Background(), core.RunConfig{
				Scenario: spec, System: sys, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if o.Refs == 0 {
				t.Fatal("no references simulated")
			}
		})
		t.Run("dir16/"+name, func(t *testing.T) {
			spec, err := scenario.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			o, err := Differential(context.Background(), core.RunConfig{
				Scenario: spec, System: sys, Seed: 1, Machine: dirMachine(16),
			})
			if err != nil {
				t.Fatal(err)
			}
			if o.Refs == 0 {
				t.Fatal("no references simulated")
			}
		})
	}
}

// TestScenarioSharingSweepDifferential drives the headline study end
// to end under the oracle: the sharing-degree sweep from private data
// to machine-wide sharing on the 16-CPU directory machine. Misses must
// grow monotonically with the sharing degree — the law the scenario
// engine exists to expose.
func TestScenarioSharingSweepDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("four 16-CPU differential runs")
	}
	base, err := scenario.Preset("sharing")
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, d := range []int{1, 4, 8, 16} {
		o, err := Differential(context.Background(), core.RunConfig{
			Scenario: base.WithSharingDegree(d), System: core.Base, Seed: 1,
			Machine: dirMachine(16),
		})
		if err != nil {
			t.Fatalf("degree %d: %v", d, err)
		}
		misses := o.Counters.TotalDReadMisses()
		if i > 0 && misses <= prev {
			t.Errorf("degree %d misses %d not above previous %d", d, misses, prev)
		}
		prev = misses
	}
}
