// Package check is the correctness harness of the reproduction: a
// timing-free reference oracle and invariant engine run in lockstep
// against the cycle-level simulator.
//
// The Checker implements sim.Observer. It mirrors the simulator's
// event stream into an independent model — flat per-CPU line-state
// maps implementing the textbook Illinois-MESI and Firefly semantics,
// its own invalidation bookkeeping for the miss classifier, and
// multiset models of the two write buffers — and, after every
// coherence transition, compares both the state the simulator claims
// and the state actually stored in its cache arrays against the
// oracle's expectation. The protocol transition rules here are
// re-implemented from the paper (they deliberately do NOT call
// internal/coherence), so a corrupted decision table in the simulator
// surfaces as a divergence rather than being mirrored.
//
// Invariants checked on every event:
//
//   - single-owner: at most one Modified/Exclusive copy of a line
//     system-wide, and an owner never coexists with a sharer;
//   - no-stale-read: a read hit never observes a line that a remote
//     write invalidated and that was not refilled (pending local
//     writes to the line are exempt — a write-allocate in flight
//     legitimately fills the primary cache before it drains);
//   - write-buffer forwarding consistency: a read forwards from a
//     write buffer iff the oracle's multiset holds a matching entry;
//   - model-vs-array agreement: after every transition the oracle's
//     state for the affected line matches the simulator's arrays on
//     every processor.
//
// On a directory-coherent machine (sim.CoherenceDirectory) the oracle
// additionally maintains its own full-map directory — an owner table
// and per-line holder sets, derived purely from the cache-state event
// stream by independently written rules (they do NOT read the
// simulator's directory) — and on every EvDirUpdate cross-checks
// three views of the entry: the event's claim, the entry the
// simulator actually stores (via the DirectoryEntry hook), and the
// oracle's tables, then verifies the sharer vector against the MESI
// model (a processor is listed iff it holds a valid copy; the
// recorded owner is the unique M/E holder or NoOwner). The Firefly
// update attribute is ignored on a directory machine, so an EvUpdate
// there is itself a divergence.
//
// The first divergences are reported with full context (global ref
// index, CPU, address, expected vs actual) via Report and Err.
package check

import (
	"fmt"
	"strings"

	"oscachesim/internal/coherence"
	"oscachesim/internal/sim"
	"oscachesim/internal/stats"
	"oscachesim/internal/trace"
)

// Divergence is one disagreement between the oracle and the simulator.
type Divergence struct {
	// RefIndex is the global ordinal of the trace reference in flight.
	RefIndex uint64
	// CPU is the processor the diverging event belongs to.
	CPU int
	// Addr is the affected address.
	Addr uint64
	// What names the check that failed.
	What string
	// Expected and Actual describe the disagreement.
	Expected string
	Actual   string
}

// String renders the divergence with full context.
func (d Divergence) String() string {
	return fmt.Sprintf("ref %d cpu%d addr %#x: %s: expected %s, actual %s",
		d.RefIndex, d.CPU, d.Addr, d.What, d.Expected, d.Actual)
}

// maxDivergences caps the report so a systematic divergence doesn't
// drown the first (most useful) one.
const maxDivergences = 16

// missCtx is the classification evidence captured for the read miss in
// flight on one processor.
type missCtx struct {
	valid bool
	inval bool
	class trace.DataClass
}

// Checker is the differential oracle. Attach one to a simulator with
// Attach before Run; read Report/Err afterwards (or mid-run).
type Checker struct {
	s *sim.Simulator
	p sim.Params

	// model holds each processor's secondary-cache line states as the
	// oracle believes them (absent = Invalid).
	model []map[uint64]coherence.State
	// invalBy is the oracle's own record of which data class last
	// invalidated a line on a processor (miss-classification evidence).
	invalBy []map[uint64]trace.DataClass
	// l1wb / l2wb are multisets of pending buffered writes, keyed at
	// the buffers' match granules (word, L2 line).
	l1wb []map[uint64]int
	l2wb []map[uint64]int
	// ctx is the per-processor miss context in flight.
	ctx []missCtx

	// dirMode is set on a directory-coherent machine. dirOwner and
	// dirHolders are the oracle's own full-map directory (absent owner
	// entry = NoOwner), maintained from the cache-state events by
	// rules written independently of internal/coherence's directory
	// mutators.
	dirMode    bool
	dirOwner   map[uint64]int
	dirHolders map[uint64]map[int]bool

	divs []Divergence
	// dropped counts divergences beyond the report cap.
	dropped uint64

	// Event and reference tallies for the conservation cross-check.
	events   uint64
	refs     uint64
	instrs   [stats.NumModes]uint64
	reads    [stats.NumModes]uint64
	writes   [stats.NumModes]uint64
	misses   [stats.NumModes]uint64
	osMissBy [stats.NumMissClasses]uint64
	osCohBy  [stats.NumCohClasses]uint64
}

// Attach builds a Checker over the simulator's machine and registers
// it as the simulator's observer. Call before Run.
func Attach(s *sim.Simulator) *Checker {
	p := s.Params()
	n := s.NumCPUs()
	k := &Checker{s: s, p: p}
	for i := 0; i < n; i++ {
		k.model = append(k.model, make(map[uint64]coherence.State))
		k.invalBy = append(k.invalBy, make(map[uint64]trace.DataClass))
		k.l1wb = append(k.l1wb, make(map[uint64]int))
		k.l2wb = append(k.l2wb, make(map[uint64]int))
	}
	k.ctx = make([]missCtx, n)
	if p.Coherence == sim.CoherenceDirectory {
		k.dirMode = true
		k.dirOwner = make(map[uint64]int)
		k.dirHolders = make(map[uint64]map[int]bool)
	}
	s.SetObserver(k)
	return k
}

// Events returns how many events the checker has observed.
func (k *Checker) Events() uint64 { return k.events }

// Report returns the recorded divergences (capped; see Dropped).
func (k *Checker) Report() []Divergence { return k.divs }

// Dropped returns how many divergences were discarded beyond the cap.
func (k *Checker) Dropped() uint64 { return k.dropped }

// Err returns nil when the oracle agreed with the simulator
// everywhere, or an error describing the first divergences.
func (k *Checker) Err() error {
	if len(k.divs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d divergence(s)", uint64(len(k.divs))+k.dropped)
	for i, d := range k.divs {
		if i >= 4 {
			b.WriteString("\n  ...")
			break
		}
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (k *Checker) diverge(ev sim.Event, cpu int, addr uint64, what, expected, actual string) {
	if len(k.divs) >= maxDivergences {
		k.dropped++
		return
	}
	k.divs = append(k.divs, Divergence{
		RefIndex: ev.RefIndex, CPU: cpu, Addr: addr,
		What: what, Expected: expected, Actual: actual,
	})
}

// --- Independent re-implementations ----------------------------------

// modeOf mirrors the simulator's kind-to-mode mapping.
func modeOf(kind trace.Kind) int {
	if int(kind) >= stats.NumModes {
		return int(trace.KindOS)
	}
	return int(kind)
}

// cohClassOf is the oracle's own Table 5 mapping (independent of
// stats.CohClassOf, so a corruption there is caught).
func cohClassOf(dc trace.DataClass) stats.CohClass {
	switch dc {
	case trace.ClassBarrier:
		return stats.CohBarrier
	case trace.ClassCounter:
		return stats.CohInfreqComm
	case trace.ClassFreqShared:
		return stats.CohFreqShared
	case trace.ClassLock:
		return stats.CohLock
	default:
		return stats.CohOther
	}
}

func (k *Checker) l2Line(addr uint64) uint64 { return addr &^ (k.p.L2.LineSize - 1) }
func (k *Checker) word(addr uint64) uint64   { return addr &^ 3 }
func (k *Checker) updatePage(addr uint64) bool {
	// The directory protocol is invalidation-only: the per-page Update
	// attribute must have no effect there.
	if k.dirMode {
		return false
	}
	return k.p.Attrs != nil && k.p.Attrs.Get(addr).Update
}

// remotePresent reports whether any processor other than cpu holds
// line in the oracle model.
func (k *Checker) remotePresent(cpu int, line uint64) bool {
	for i := range k.model {
		if i == cpu {
			continue
		}
		if k.model[i][line].Valid() {
			return true
		}
	}
	return false
}

// pendingWrite reports whether cpu has a buffered write destined for
// the given L2 line in either write-buffer model.
func (k *Checker) pendingWrite(cpu int, line uint64) bool {
	if k.l2wb[cpu][line] > 0 {
		return true
	}
	for a, n := range k.l1wb[cpu] {
		if n > 0 && k.l2Line(a) == line {
			return true
		}
	}
	return false
}

// --- Event dispatch ---------------------------------------------------

// Observe implements sim.Observer.
func (k *Checker) Observe(ev sim.Event) {
	k.events++
	switch ev.Kind {
	case sim.EvRef:
		k.onRef(ev)
	case sim.EvReadHit:
		k.onReadHit(ev)
	case sim.EvForward:
		k.onForward(ev)
	case sim.EvNoForward:
		k.onNoForward(ev)
	case sim.EvMissContext:
		k.onMissContext(ev)
	case sim.EvReadMiss:
		k.onReadMiss(ev)
	case sim.EvFillRead, sim.EvFillWrite:
		k.onFill(ev)
	case sim.EvEvict:
		k.onEvict(ev)
	case sim.EvInvalidate:
		k.onInvalidate(ev)
	case sim.EvDowngrade:
		k.onDowngrade(ev)
	case sim.EvAbsorb:
		k.onAbsorb(ev)
	case sim.EvUpgrade:
		k.onUpgrade(ev)
	case sim.EvUpdate:
		k.onUpdate(ev)
	case sim.EvWBPush:
		k.onWBPush(ev)
	case sim.EvWBRetire:
		k.onWBRetire(ev)
	case sim.EvDirUpdate:
		k.onDirUpdate(ev)
	}
}

func (k *Checker) onRef(ev sim.Event) {
	k.refs++
	// A fully-hidden prefetch consumes its miss context without
	// recording a miss; discard any stale context at the next ref.
	k.ctx[ev.CPU] = missCtx{}
	mode := modeOf(ev.Ref.Kind)
	switch ev.Ref.Op {
	case trace.OpInstr, trace.OpPrefetch:
		k.instrs[mode]++
	case trace.OpRead:
		k.reads[mode]++
	case trace.OpWrite:
		k.writes[mode]++
	}
}

func (k *Checker) onReadHit(ev sim.Event) {
	line := k.l2Line(ev.Addr)
	switch ev.Level {
	case 1:
		// No-stale-read: a primary hit on a line a remote write
		// invalidated (and that was never refilled) reads stale data —
		// unless a local write to the line is in flight, in which case
		// the primary copy is the fresh write-allocate.
		if cls, stale := k.invalBy[ev.CPU][line]; stale && !k.pendingWrite(ev.CPU, line) {
			k.diverge(ev, ev.CPU, ev.Addr, "stale primary read hit",
				"miss (line invalidated by remote "+cls.String()+" write)", "hit")
		}
	case 2:
		if st := k.model[ev.CPU][line]; !st.Valid() {
			k.diverge(ev, ev.CPU, ev.Addr, "secondary read hit on oracle-invalid line",
				"miss (oracle state I)", "hit")
		}
	}
}

func (k *Checker) onForward(ev sim.Event) {
	switch ev.Level {
	case 1:
		if k.l1wb[ev.CPU][k.word(ev.Addr)] == 0 {
			k.diverge(ev, ev.CPU, ev.Addr, "forward from empty word write buffer",
				"no matching entry", "forwarded at level 1")
		}
	case 2:
		if k.l1wb[ev.CPU][k.word(ev.Addr)] > 0 {
			k.diverge(ev, ev.CPU, ev.Addr, "forward level",
				"level 1 (word buffer holds the address)", "level 2")
		}
		if k.l2wb[ev.CPU][k.l2Line(ev.Addr)] == 0 {
			k.diverge(ev, ev.CPU, ev.Addr, "forward from empty line write buffer",
				"no matching entry", "forwarded at level 2")
		}
	}
}

func (k *Checker) onNoForward(ev sim.Event) {
	if k.l1wb[ev.CPU][k.word(ev.Addr)] > 0 {
		k.diverge(ev, ev.CPU, ev.Addr, "missed forwarding opportunity",
			"forward from word buffer", "no forward")
	}
	if k.l2wb[ev.CPU][k.l2Line(ev.Addr)] > 0 {
		k.diverge(ev, ev.CPU, ev.Addr, "missed forwarding opportunity",
			"forward from line buffer", "no forward")
	}
}

func (k *Checker) onMissContext(ev sim.Event) {
	line := k.l2Line(ev.Addr)
	cls, expInval := k.invalBy[ev.CPU][line]
	if ev.CtxInval != expInval {
		k.diverge(ev, ev.CPU, ev.Addr, "miss-context invalidation evidence",
			fmt.Sprintf("inval=%v", expInval), fmt.Sprintf("inval=%v", ev.CtxInval))
	} else if expInval && ev.Class != cls {
		k.diverge(ev, ev.CPU, ev.Addr, "miss-context invalidation class",
			cls.String(), ev.Class.String())
	}
	delete(k.invalBy[ev.CPU], line)
	// Carry the simulator's claimed evidence forward so the classifier
	// check below tests classification logic, not the evidence again.
	k.ctx[ev.CPU] = missCtx{valid: true, inval: ev.CtxInval, class: ev.Class}
}

func (k *Checker) onReadMiss(ev sim.Event) {
	mode := modeOf(ev.Ref.Kind)
	k.misses[mode]++
	isOS := ev.Ref.Kind == trace.KindOS
	if ev.Classified != isOS {
		k.diverge(ev, ev.CPU, ev.Addr, "miss classification scope",
			fmt.Sprintf("classified=%v (kind %s)", isOS, ev.Ref.Kind),
			fmt.Sprintf("classified=%v", ev.Classified))
	}
	ctx := k.ctx[ev.CPU]
	k.ctx[ev.CPU] = missCtx{}
	if !ev.Classified {
		return
	}
	if !ctx.valid {
		k.diverge(ev, ev.CPU, ev.Addr, "read miss without captured context",
			"miss context before classification", "none")
		ctx = missCtx{inval: ev.CtxInval}
	}
	// The oracle's own Table 2 classifier.
	exp := stats.MissOther
	expCoh := stats.CohOther
	switch {
	case ev.Ref.Block != 0:
		exp = stats.MissBlock
	case ctx.inval:
		exp = stats.MissCoherence
		expCoh = cohClassOf(ctx.class)
	}
	if ev.MissClass != exp {
		k.diverge(ev, ev.CPU, ev.Addr, "miss class",
			exp.String(), ev.MissClass.String())
	} else if exp == stats.MissCoherence && ev.CohClass != expCoh {
		k.diverge(ev, ev.CPU, ev.Addr, "coherence miss sub-class",
			expCoh.String(), ev.CohClass.String())
	}
	k.osMissBy[exp]++
	if exp == stats.MissCoherence {
		k.osCohBy[expCoh]++
	}
}

func (k *Checker) onFill(ev sim.Event) {
	line := ev.Addr
	remote := k.remotePresent(ev.CPU, line)
	var exp coherence.State
	if ev.Kind == sim.EvFillRead {
		// Both protocols: Shared when another cache holds the line
		// (remote holders were downgraded to Shared before the fill,
		// preserving presence), else valid-exclusive.
		exp = coherence.Exclusive
		if remote {
			exp = coherence.Shared
		}
	} else {
		// Write-allocate: Illinois always fills Modified (everyone else
		// was invalidated); Firefly fills Shared when sharers keep
		// their copies, Modified otherwise.
		exp = coherence.Modified
		if k.updatePage(line) && remote {
			exp = coherence.Shared
		}
	}
	if ev.State != exp {
		k.diverge(ev, ev.CPU, line, "fill state", exp.String(), ev.State.String())
	}
	k.model[ev.CPU][line] = ev.State
	delete(k.invalBy[ev.CPU], line)
	k.dirTrackFill(ev.CPU, line, ev.State)
	k.verifyLine(ev, line)
}

func (k *Checker) onEvict(ev sim.Event) {
	line := ev.Addr
	prior, held := k.model[ev.CPU][line]
	if !held {
		k.diverge(ev, ev.CPU, line, "eviction of oracle-invalid line",
			"oracle holds the victim", "absent")
	} else if prior != ev.State {
		k.diverge(ev, ev.CPU, line, "evicted line state", prior.String(), ev.State.String())
	}
	delete(k.model[ev.CPU], line)
	k.dirTrackDrop(ev.CPU, line)
}

func (k *Checker) onInvalidate(ev sim.Event) {
	line := ev.Addr
	prior, held := k.model[ev.Holder][line]
	if !held {
		k.diverge(ev, ev.Holder, line, "invalidation of oracle-invalid line",
			"oracle holds a copy", "absent")
	} else if prior != ev.State {
		k.diverge(ev, ev.Holder, line, "invalidated line prior state",
			prior.String(), ev.State.String())
	}
	delete(k.model[ev.Holder], line)
	k.invalBy[ev.Holder][line] = ev.Class
	// The snoop must have cleared the holder's arrays (inclusion).
	if st := k.s.L2State(ev.Holder, line); st.Valid() {
		k.diverge(ev, ev.Holder, line, "secondary line survived invalidation",
			"I", st.String())
	}
	for a := line; a < line+k.p.L2.LineSize; a += k.p.L1D.LineSize {
		if k.s.L1DHas(ev.Holder, a) {
			k.diverge(ev, ev.Holder, a, "primary line survived invalidation",
				"absent", "present")
		}
	}
	k.dirTrackDrop(ev.Holder, line)
	k.verifyLine(ev, line)
}

func (k *Checker) onDowngrade(ev sim.Event) {
	line := ev.Addr
	prior, held := k.model[ev.Holder][line]
	if !held {
		k.diverge(ev, ev.Holder, line, "downgrade of oracle-invalid line",
			"oracle holds a copy", "absent")
	} else if prior != ev.State {
		k.diverge(ev, ev.Holder, line, "downgraded line prior state",
			prior.String(), ev.State.String())
	}
	k.model[ev.Holder][line] = coherence.Shared
	// A downgraded owner keeps its copy but loses ownership.
	k.dirTrackDowngrade(line)
	k.verifyLine(ev, line)
}

func (k *Checker) onAbsorb(ev sim.Event) {
	line := ev.Addr
	prior := k.model[ev.CPU][line]
	if prior != coherence.Modified && prior != coherence.Exclusive {
		k.diverge(ev, ev.CPU, line, "write absorbed by non-owned line",
			"M or E", prior.String())
	}
	k.model[ev.CPU][line] = coherence.Modified
	k.dirTrackOwner(ev.CPU, line)
	k.verifyLine(ev, line)
}

func (k *Checker) onUpgrade(ev sim.Event) {
	line := ev.Addr
	if prior := k.model[ev.CPU][line]; prior != coherence.Shared {
		k.diverge(ev, ev.CPU, line, "upgrade of non-Shared line",
			"S", prior.String())
	}
	k.model[ev.CPU][line] = coherence.Modified
	k.dirTrackOwner(ev.CPU, line)
	k.verifyLine(ev, line)
}

func (k *Checker) onUpdate(ev sim.Event) {
	line := ev.Addr
	if k.dirMode {
		k.diverge(ev, ev.CPU, line, "update broadcast on directory machine",
			"invalidation-only protocol", "EvUpdate")
		return
	}
	if prior := k.model[ev.CPU][line]; prior != coherence.Shared {
		k.diverge(ev, ev.CPU, line, "update broadcast from non-Shared line",
			"S", prior.String())
	}
	if remote := k.remotePresent(ev.CPU, line); remote != ev.Sharers {
		k.diverge(ev, ev.CPU, line, "update shared-line signal",
			fmt.Sprintf("sharers=%v", remote), fmt.Sprintf("sharers=%v", ev.Sharers))
	}
	next := coherence.Shared
	if !ev.Sharers {
		// Firefly: the last copy becomes valid-exclusive (clean).
		next = coherence.Exclusive
	}
	k.model[ev.CPU][line] = next
	k.verifyLine(ev, line)
}

func (k *Checker) onWBPush(ev sim.Event) {
	key := k.word(ev.Addr)
	buf := k.l1wb
	if ev.Level == 2 {
		key = k.l2Line(ev.Addr)
		buf = k.l2wb
	}
	buf[ev.CPU][key]++
	depth := k.p.L1WriteBufDepth
	if ev.Level == 2 {
		depth = k.p.L2WriteBufDepth
	}
	if n := mapTotal(buf[ev.CPU]); n > depth {
		k.diverge(ev, ev.CPU, ev.Addr, "write buffer over capacity",
			fmt.Sprintf("<= %d entries", depth), fmt.Sprintf("%d", n))
	}
}

func (k *Checker) onWBRetire(ev sim.Event) {
	key := k.word(ev.Addr)
	buf := k.l1wb
	if ev.Level == 2 {
		key = k.l2Line(ev.Addr)
		buf = k.l2wb
	}
	if buf[ev.CPU][key] == 0 {
		k.diverge(ev, ev.CPU, ev.Addr, "write-buffer retire without matching push",
			"a pending entry", "none")
		return
	}
	buf[ev.CPU][key]--
	if buf[ev.CPU][key] == 0 {
		delete(buf[ev.CPU], key)
	}
}

func mapTotal(m map[uint64]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// verifyLine checks the MESI single-owner invariant and the
// model-vs-array agreement for one line after a transition.
func (k *Checker) verifyLine(ev sim.Event, line uint64) {
	owners, valid := 0, 0
	for i := range k.model {
		st := k.model[i][line]
		if st.Valid() {
			valid++
		}
		if st == coherence.Modified || st == coherence.Exclusive {
			owners++
		}
		if actual := k.s.L2State(i, line); actual != st {
			k.diverge(ev, i, line, "oracle/array state mismatch",
				st.String(), actual.String())
		}
	}
	if owners > 1 {
		k.diverge(ev, ev.CPU, line, "single-owner invariant",
			"<=1 M/E copy", fmt.Sprintf("%d owners", owners))
	} else if owners == 1 && valid > 1 {
		k.diverge(ev, ev.CPU, line, "single-owner invariant",
			"owner excludes sharers", fmt.Sprintf("owner + %d sharer(s)", valid-1))
	}
}

// --- Directory oracle -------------------------------------------------

// dirTrackFill records a fill in the oracle's directory: the filler
// becomes a holder, and an owning fill (M/E) makes it the owner.
func (k *Checker) dirTrackFill(cpu int, line uint64, st coherence.State) {
	if !k.dirMode {
		return
	}
	h := k.dirHolders[line]
	if h == nil {
		h = make(map[int]bool)
		k.dirHolders[line] = h
	}
	h[cpu] = true
	if st == coherence.Modified || st == coherence.Exclusive {
		k.dirOwner[line] = cpu
	} else if o, ok := k.dirOwner[line]; ok && o == cpu {
		delete(k.dirOwner, line)
	}
}

// dirTrackDrop records a holder losing its copy (eviction or
// invalidation); a dropped owner leaves the line ownerless.
func (k *Checker) dirTrackDrop(cpu int, line uint64) {
	if !k.dirMode {
		return
	}
	if h := k.dirHolders[line]; h != nil {
		delete(h, cpu)
		if len(h) == 0 {
			delete(k.dirHolders, line)
		}
	}
	if o, ok := k.dirOwner[line]; ok && o == cpu {
		delete(k.dirOwner, line)
	}
}

// dirTrackDowngrade records the owner dropping to Shared: it keeps
// its copy, the line has no owner.
func (k *Checker) dirTrackDowngrade(line uint64) {
	if !k.dirMode {
		return
	}
	delete(k.dirOwner, line)
}

// dirTrackOwner records cpu taking sole ownership (upgrade, or a
// write absorbed by an Exclusive copy).
func (k *Checker) dirTrackOwner(cpu int, line uint64) {
	if !k.dirMode {
		return
	}
	h := k.dirHolders[line]
	if h == nil {
		h = make(map[int]bool)
		k.dirHolders[line] = h
	}
	h[cpu] = true
	k.dirOwner[line] = cpu
}

// onDirUpdate cross-checks, after each directory transaction, the
// event's claimed entry, the entry the simulator stores (via the
// DirectoryEntry hook), and the oracle's own tables — then verifies
// the sharer vector and owner against the MESI model.
func (k *Checker) onDirUpdate(ev sim.Event) {
	line := ev.Addr
	if !k.dirMode {
		k.diverge(ev, ev.CPU, line, "directory update on snooping machine",
			"no EvDirUpdate events", "EvDirUpdate")
		return
	}
	// 1. Event vs the entry the simulator stores.
	owner, holders, ok := k.s.DirectoryEntry(line)
	if !ok {
		k.diverge(ev, ev.CPU, line, "directory entry hook",
			"directory-mode lookup", "unavailable")
		return
	}
	if owner != ev.Owner || len(holders) != ev.SharerCount {
		k.diverge(ev, ev.CPU, line, "directory event vs stored entry",
			fmt.Sprintf("owner=%d sharers=%d", owner, len(holders)),
			fmt.Sprintf("owner=%d sharers=%d", ev.Owner, ev.SharerCount))
	}
	// 2. Oracle tables vs the stored entry.
	expOwner := coherence.NoOwner
	if o, okk := k.dirOwner[line]; okk {
		expOwner = o
	}
	if expOwner != owner {
		k.diverge(ev, ev.CPU, line, "directory owner",
			fmt.Sprintf("owner=%d", expOwner), fmt.Sprintf("owner=%d", owner))
	}
	h := k.dirHolders[line]
	if len(h) != len(holders) {
		k.diverge(ev, ev.CPU, line, "directory sharer count",
			fmt.Sprintf("%d holder(s)", len(h)), fmt.Sprintf("%d holder(s)", len(holders)))
	} else {
		for _, i := range holders {
			if !h[i] {
				k.diverge(ev, i, line, "directory sharer membership",
					"absent from sharer vector", "listed as holder")
			}
		}
	}
	// 3. Sharer vector vs MESI model: listed iff holding a valid copy.
	owners := 0
	for i := range k.model {
		st := k.model[i][line]
		if listed := h[i]; listed != st.Valid() {
			k.diverge(ev, i, line, "sharer-vector/cache-state agreement",
				fmt.Sprintf("listed=%v", st.Valid()), fmt.Sprintf("listed=%v (state %s)", listed, st))
		}
		if st == coherence.Modified || st == coherence.Exclusive {
			owners++
			if expOwner != i {
				k.diverge(ev, i, line, "directory owner identity",
					fmt.Sprintf("owner=%d (holds %s)", i, st), fmt.Sprintf("owner=%d", expOwner))
			}
		}
	}
	if owners > 1 {
		k.diverge(ev, ev.CPU, line, "directory single-owner invariant",
			"<=1 M/E copy", fmt.Sprintf("%d owners", owners))
	}
	if expOwner != coherence.NoOwner {
		if !h[expOwner] {
			k.diverge(ev, ev.CPU, line, "directory owner in sharer vector",
				"owner listed as holder", fmt.Sprintf("owner=%d absent", expOwner))
		}
		if st := k.model[expOwner][line]; st != coherence.Modified && st != coherence.Exclusive {
			k.diverge(ev, expOwner, line, "directory owner cache state",
				"M or E", st.String())
		}
	}
}
