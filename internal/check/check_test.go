package check

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"oscachesim/internal/coherence"
	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/workload"
)

// testScale keeps the 4x8 differential grid in the seconds range.
const testScale = 3

// TestDifferentialAllSystems runs the oracle in lockstep with the
// simulator over the full evaluation grid: every workload under every
// system, at reduced scale.
func TestDifferentialAllSystems(t *testing.T) {
	for _, w := range workload.Names() {
		for _, sys := range core.Systems() {
			w, sys := w, sys
			t.Run(string(w)+"/"+sys.String(), func(t *testing.T) {
				o, err := Differential(context.Background(), core.RunConfig{
					Workload: w, System: sys, Scale: testScale, Seed: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if o.Refs == 0 {
					t.Fatal("no references simulated")
				}
			})
		}
	}
}

// tamperer corrupts the first read fill's claimed state before
// forwarding the event stream to the oracle — the mutation smoke test:
// a corrupted coherence transition must surface as a divergence
// carrying ref index, CPU, address and expected/actual state.
type tamperer struct {
	inner    sim.Observer
	tampered bool
}

func (t *tamperer) Observe(ev sim.Event) {
	if !t.tampered && ev.Kind == sim.EvFillRead && ev.State == coherence.Exclusive {
		ev.State = coherence.Modified
		t.tampered = true
	}
	t.inner.Observe(ev)
}

func TestCheckerDetectsCorruptedTransition(t *testing.T) {
	var k *Checker
	var tam *tamperer
	_, err := core.Run(context.Background(), core.RunConfig{
		Workload: workload.Shell, System: core.Base, Scale: testScale, Seed: 1,
		Monitor: func(s *sim.Simulator, _ sim.Params) {
			k = Attach(s)
			tam = &tamperer{inner: k}
			s.SetObserver(tam)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tam.tampered {
		t.Fatal("trace produced no Exclusive read fill to corrupt")
	}
	divs := k.Report()
	if len(divs) == 0 {
		t.Fatal("oracle missed a corrupted coherence transition")
	}
	d := divs[0]
	if d.RefIndex == 0 {
		t.Errorf("divergence lacks a reference index: %v", d)
	}
	if d.Expected == "" || d.Actual == "" {
		t.Errorf("divergence lacks expected/actual states: %v", d)
	}
	if !strings.Contains(d.String(), "cpu") || !strings.Contains(d.String(), "0x") {
		t.Errorf("divergence report lacks CPU or address: %v", d)
	}
	t.Logf("first divergence: %v", d)
}

// TestSeedDeterminism: the same configuration and seed must reproduce
// a bit-identical outcome.
func TestSeedDeterminism(t *testing.T) {
	cfg := core.RunConfig{Workload: workload.TRFD4, System: core.BCPref, Scale: testScale, Seed: 7}
	a, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Error("same seed produced different counters")
	}
	if a.Refs != b.Refs || !reflect.DeepEqual(a.CPUTime, b.CPUTime) {
		t.Error("same seed produced different reference counts or clocks")
	}
	c, err := core.Run(context.Background(), core.RunConfig{Workload: workload.TRFD4, System: core.BCPref, Scale: testScale, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Counters, c.Counters) {
		t.Error("different seeds produced identical counters (seed not plumbed through)")
	}
}

// TestVerifyOutcomeCatchesViolations corrupts counters one law at a
// time and expects VerifyOutcome to object.
func TestVerifyOutcomeCatchesViolations(t *testing.T) {
	good, err := core.Run(context.Background(), core.RunConfig{Workload: workload.Shell, System: core.Base, Scale: testScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutcome(good); err != nil {
		t.Fatalf("clean run fails conservation laws: %v", err)
	}

	corruptions := []struct {
		name string
		mut  func(o *core.Outcome)
	}{
		{"miss-class sum", func(o *core.Outcome) { o.Counters.OSMissBy[0]++ }},
		{"coherence sub-class sum", func(o *core.Outcome) { o.Counters.OSCohBy[0]++ }},
		{"misses exceed reads", func(o *core.Outcome) { o.Counters.DReadMisses[0] = o.Counters.DReads[0] + 1 }},
		{"time conservation", func(o *core.Outcome) { o.Counters.Time[0].Exec++ }},
		{"cycle maximum", func(o *core.Outcome) { o.Counters.Cycles++ }},
	}
	for _, c := range corruptions {
		bad := *good
		bad.Counters = good.Counters
		c.mut(&bad)
		if err := VerifyOutcome(&bad); err == nil {
			t.Errorf("%s: corruption passed the conservation laws", c.name)
		}
	}
}

// TestMonotonicity: growing the primary data cache must not increase
// read misses on the same trace. The small slack tolerates the
// set-mapping shifts of a direct-mapped cache.
func TestMonotonicity(t *testing.T) {
	sizes := []uint64{8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024}
	err := Monotonicity(context.Background(), workload.Shell, core.Base, testScale, 1, sizes, 0.5)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckerObservesEverySystem sanity-checks that the event stream
// is non-trivial under each hardware scheme (the oracle would trivially
// "pass" if the simulator stopped emitting).
func TestCheckerObservesEverySystem(t *testing.T) {
	for _, sys := range []core.System{core.Base, core.BlkBypass, core.BlkDma, core.BCohRelUp} {
		var k *Checker
		_, err := core.Run(context.Background(), core.RunConfig{
			Workload: workload.Shell, System: sys, Scale: testScale, Seed: 1,
			Monitor: func(s *sim.Simulator, _ sim.Params) { k = Attach(s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if k.Events() == 0 {
			t.Errorf("%s: simulator emitted no events", sys)
		}
	}
}
