package check

import (
	"context"
	"fmt"
	"testing"

	"oscachesim/internal/core"
	"oscachesim/internal/sim"
	"oscachesim/internal/workload"
)

// TestGeometryConservation sweeps the generalized machine model —
// processor count × set-associativity × line size — and checks the
// conservation laws every outcome must satisfy regardless of
// geometry: miss classes sum to the miss count, the per-mode time
// breakdowns sum exactly to the CPU clocks, and misses never exceed
// references (all enforced by VerifyOutcome). Machines at 16 CPUs and
// beyond run the directory protocol; the small ones keep the snooping
// bus, so both datapaths face the whole geometry grid.
func TestGeometryConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("geometry property sweep skipped in -short mode")
	}
	for _, ncpus := range []int{2, 8, 16, 64} {
		for _, assoc := range []int{2, 4, 8} {
			for _, line := range []uint64{32, 64, 128} {
				p := sim.DefaultParams()
				p.NumCPUs = ncpus
				if ncpus >= 16 {
					p.Coherence = sim.CoherenceDirectory
				}
				p.L1D.Assoc = assoc
				p.L2.Assoc = assoc
				p.L1D.LineSize = line
				p.L1I.LineSize = line
				// Inclusion: the secondary line must cover the primary.
				p.L2.LineSize = max(32, line)
				name := fmt.Sprintf("%dcpu/%dway/%dB", ncpus, assoc, line)
				t.Run(name, func(t *testing.T) {
					o, err := core.Run(context.Background(), core.RunConfig{
						Workload: workload.Shell, System: core.Base,
						Scale: 1, Seed: 1, Machine: &p,
					})
					if err != nil {
						t.Fatal(err)
					}
					if o.Refs == 0 {
						t.Fatal("no references simulated")
					}
					if err := VerifyOutcome(o); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
