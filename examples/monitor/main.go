// Monitor demonstrates the paper's tracing methodology (Sections
// 2.1-2.2) end to end: the kernel's reference stream is instrumented
// with escape loads (one odd-address read per basic block, since the
// hardware probes could not see instruction fetches that hit the
// primary instruction cache), captured through per-processor trace
// buffers with the halt/drain/restart protocol, reconstructed back
// into a full instruction+data trace, and finally simulated — with the
// result compared against simulating the original stream directly.
//
// Run with:
//
//	go run ./examples/monitor
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	"oscachesim"
	"oscachesim/internal/kernel"
	"oscachesim/internal/monitor"
	"oscachesim/internal/sim"
	"oscachesim/internal/trace"
	"oscachesim/internal/workload"
)

func main() {
	// 1. Build a workload the way the study's machine ran one.
	built := workload.Build(workload.TRFD4, kernel.OptConfig{}, 6, 1)
	fmt.Printf("workload: %s, %d references across %d processors\n",
		built.Name, built.TotalRefs(), len(built.PerCPU))

	// 2. Instrument every basic block with an escape load.
	table := monitor.NewBlockTable()
	instrumented := make([][]trace.Ref, len(built.PerCPU))
	var stats monitor.InstrumentStats
	for c, refs := range built.PerCPU {
		out, st := monitor.Instrument(refs, table)
		instrumented[c] = out
		stats.Instrs += st.Instrs
		stats.Escapes += st.Escapes
		stats.DataRefs += st.DataRefs
	}
	fmt.Printf("instrumented: %d basic blocks, %d escapes, %.1f%% instruction overhead (paper: ~30%%)\n",
		table.Blocks(), stats.Escapes, 100*stats.Overhead())

	// 3. Capture through the hardware probes (1M-entry buffers in the
	// original; smaller here to show several dump cycles).
	records, probes := monitor.CaptureSession(instrumented, 1<<15)
	fmt.Printf("captured: %d records on cpu0 across %d buffer dumps\n",
		probes[0].TotalCaptured, probes[0].Dumps)

	// 4. Reconstruct the full streams and verify fidelity.
	sources := make([]trace.Source, len(records))
	for c := range records {
		full, err := monitor.Reconstruct(records[c], table)
		if err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(full, built.PerCPU[c]) {
			log.Fatalf("cpu%d: reconstruction diverged from the original stream", c)
		}
		sources[c] = trace.NewSliceSource(full)
	}
	fmt.Println("reconstructed: all processor streams match the originals exactly")

	// 5. Simulate the reconstructed trace and compare against a direct
	// simulation of the same workload.
	s, err := sim.New(oscachesim.DefaultMachine(), sources)
	if err != nil {
		log.Fatal(err)
	}
	fromMonitor, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	s2, err := sim.New(oscachesim.DefaultMachine(), built.Sources())
	if err != nil {
		log.Fatal(err)
	}
	direct, err := s2.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated:   %d cycles from the monitored trace, %d directly — identical: %v\n",
		fromMonitor.Counters.Cycles, direct.Counters.Cycles,
		fromMonitor.Counters == direct.Counters)
}
