// Hotspots reproduces the Section 6 study on the Shell workload: it
// identifies the kernel's miss hot spots — the paper found 5 loops
// (page-table initialization/copy/scan/invalidate, free-list walk) and
// 7 basic-block sequences (process resume, timer accounting, syscall
// trap, context switch, scheduling, the exec tail, and buffer-cache
// lookup) — prints each spot's share of the remaining misses under
// BCoh_RelUp, and then applies hand-inserted prefetching (BCPref) to
// hide them.
//
// Run with:
//
//	go run ./examples/hotspots
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"oscachesim"
	"oscachesim/internal/kernel"
)

func main() {
	const scale, seed = 0, 1
	w := oscachesim.Shell

	outs, err := oscachesim.New(w, oscachesim.BCohRelUp,
		oscachesim.WithScale(scale), oscachesim.WithSeed(seed)).
		Compare(context.Background(), oscachesim.BCohRelUp, oscachesim.BCPref)
	if err != nil {
		log.Fatal(err)
	}
	before, after := outs[0], outs[1]

	type spot struct {
		id     uint16
		misses uint64
	}
	var spots []spot
	for id := uint16(1); id < kernel.NumSpots; id++ {
		spots = append(spots, spot{id, before.Counters.OSSpotMisses[id]})
	}
	sort.Slice(spots, func(i, j int) bool { return spots[i].misses > spots[j].misses })

	osm := before.Counters.OSDReadMisses()
	fmt.Printf("Miss hot spots in %s under BCoh_RelUp (%d OS misses):\n", w, osm)
	for _, s := range spots {
		fmt.Printf("  %-13s %6d misses (%4.1f%% of OS misses)\n",
			kernel.SpotName(s.id), s.misses, 100*float64(s.misses)/float64(osm))
	}
	hot := before.Counters.OSHotSpotMisses
	fmt.Printf("  hot spots together: %.1f%% of remaining OS misses (paper: 22-51%%)\n",
		100*float64(hot)/float64(osm))

	fmt.Println("\nAfter inserting prefetches at the hot spots (BCPref):")
	fmt.Printf("  hot-spot misses: %d -> %d\n", hot, after.Counters.OSHotSpotMisses)
	fmt.Printf("  OS misses:       %d -> %d (%.0f%%)\n", osm, after.Counters.OSDReadMisses(),
		100*float64(after.Counters.OSDReadMisses())/float64(osm))
	fmt.Printf("  OS time:         %d -> %d cycles (%.1f%% faster)\n",
		before.OSTime(), after.OSTime(),
		100*(1-float64(after.OSTime())/float64(before.OSTime())))
	fmt.Printf("  prefetches issued: %d (%d arrived late)\n",
		after.Counters.Prefetches, after.Counters.LatePrefetches)
}
