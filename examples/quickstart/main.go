// Quickstart: simulate the TRFD_4 workload on the paper's Base machine
// and on the fully optimized BCPref system, then print the headline
// result — how many operating-system data-cache misses the combined
// optimizations eliminate and how much faster the OS runs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"oscachesim"
)

func main() {
	const scale, seed = 0, 1 // workload-default length, fixed seed

	s := oscachesim.New(oscachesim.TRFD4, oscachesim.Base,
		oscachesim.WithScale(scale), oscachesim.WithSeed(seed))
	outs, err := s.Compare(context.Background(), oscachesim.Base, oscachesim.BCPref)
	if err != nil {
		log.Fatal(err)
	}
	base, full := outs[0], outs[1]

	baseM := base.Counters.OSDReadMisses()
	fullM := full.Counters.OSDReadMisses()
	fmt.Printf("workload:            %s\n", oscachesim.TRFD4)
	fmt.Printf("references simulated: %d (Base), %d (BCPref)\n", base.Refs, full.Refs)
	fmt.Printf("OS data misses:      %d -> %d  (%.0f%% eliminated or hidden; paper: ~75%%)\n",
		baseM, fullM, 100*(1-float64(fullM)/float64(baseM)))
	fmt.Printf("OS execution time:   %d -> %d cycles (%.0f%% faster; paper: ~19%%)\n",
		base.OSTime(), full.OSTime(),
		100*(1-float64(full.OSTime())/float64(base.OSTime())))
}
