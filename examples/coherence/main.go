// Coherence reproduces the Section 5 study on the TRFD_4 workload: it
// measures where the kernel's coherence misses come from (barriers,
// infrequently-communicated counters, frequently-shared variables,
// locks — the paper's Table 5), then applies data privatization and
// relocation (BCoh_Reloc) and the selective Firefly update protocol on
// the 384-byte core of shared variables (BCoh_RelUp), printing the
// miss and bus-traffic effects of each step.
//
// Run with:
//
//	go run ./examples/coherence
package main

import (
	"context"
	"fmt"
	"log"

	"oscachesim"
	"oscachesim/internal/stats"
)

func main() {
	const scale, seed = 0, 1
	w := oscachesim.TRFD4

	s := oscachesim.New(w, oscachesim.BlkDma,
		oscachesim.WithScale(scale), oscachesim.WithSeed(seed))
	base, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Coherence misses in %s under Blk_Dma (Table 5 breakdown):\n", w)
	var total uint64
	for _, v := range base.Counters.OSCohBy {
		total += v
	}
	for cls := stats.CohClass(0); cls < stats.NumCohClasses; cls++ {
		fmt.Printf("  %-12s %6.1f%%\n", cls, 100*stats.Ratio(base.Counters.OSCohBy[cls], total))
	}

	fmt.Println("\nApplying the Section 5 optimizations (normalized to Blk_Dma):")
	fmt.Printf("%-11s %8s %10s %9s\n", "system", "misses", "coherence", "traffic")
	bm := float64(base.Counters.OSDReadMisses())
	bt := float64(base.Counters.Bus.TotalBytes())
	steps := []oscachesim.System{oscachesim.BlkDma, oscachesim.BCohReloc, oscachesim.BCohRelUp}
	outs, err := s.Compare(context.Background(), steps...)
	if err != nil {
		log.Fatal(err)
	}
	for i, sys := range steps {
		o := outs[i]
		fmt.Printf("%-11s %8.2f %10.2f %9.2f\n", sys,
			float64(o.Counters.OSDReadMisses())/bm,
			float64(o.Counters.OSMissBy[stats.MissCoherence])/bm,
			float64(o.Counters.Bus.TotalBytes())/bt)
	}

	fmt.Println("\nWhat to look for (paper Section 5):")
	fmt.Println("  - privatizing the event counters and relocating false-shared data")
	fmt.Println("    trims coherence misses at zero hardware cost;")
	fmt.Println("  - the update protocol on one page of key variables removes most of")
	fmt.Println("    the remaining coherence misses with little extra bus traffic.")
}
