// Blockops reproduces the Section 4 study on the TRFD+Make workload:
// it compares the four block-operation schemes (software prefetching,
// cache bypassing, bypassing with a prefetch buffer, and the DMA-like
// controller) against the Base machine, printing the normalized
// operating-system miss counts and execution time of each — the data
// behind the paper's Figures 2 and 3 and its conclusion that simple
// bypassing is undesirable while the DMA scheme wins.
//
// Run with:
//
//	go run ./examples/blockops
package main

import (
	"context"
	"fmt"
	"log"

	"oscachesim"
	"oscachesim/internal/stats"
)

func main() {
	const scale, seed = 0, 1
	systems := []oscachesim.System{
		oscachesim.Base, oscachesim.BlkPref, oscachesim.BlkBypass,
		oscachesim.BlkByPref, oscachesim.BlkDma,
	}

	// One Sim, five systems: Compare fans the independent runs across
	// the machine's cores and returns them in order.
	outs, err := oscachesim.New(oscachesim.TRFDMake, oscachesim.Base,
		oscachesim.WithScale(scale), oscachesim.WithSeed(seed)).
		Compare(context.Background(), systems...)
	if err != nil {
		log.Fatal(err)
	}

	var baseMisses, baseTime float64
	fmt.Printf("Block-operation schemes on %s (normalized to Base):\n\n", oscachesim.TRFDMake)
	fmt.Printf("%-11s %8s %8s %8s %8s\n", "system", "misses", "block", "other", "OS time")
	for i, sys := range systems {
		o := outs[i]
		misses := float64(o.Counters.OSDReadMisses())
		osTime := float64(o.OSTime())
		if i == 0 {
			baseMisses, baseTime = misses, osTime
		}
		block := float64(o.Counters.OSMissBy[stats.MissBlock])
		fmt.Printf("%-11s %8.2f %8.2f %8.2f %8.2f\n",
			sys, misses/baseMisses, block/baseMisses,
			(misses-block)/baseMisses, osTime/baseTime)
	}

	fmt.Println("\nWhat to look for (paper Section 4.2):")
	fmt.Println("  - Blk_Pref removes most block misses via software prefetching;")
	fmt.Println("  - Blk_Bypass trades displacement misses for reuse misses and loses;")
	fmt.Println("  - Blk_Dma eliminates every block miss and wins on time.")
}
